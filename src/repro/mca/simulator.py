"""MCA's dispatch/issue/retire timeline.

Structurally like :class:`~repro.simulator.core.CoreSimulator`, but with
the behaviours of the LLVM tool:

* dispatch counts **unfused µops** (no macro-fusion, memory operands
  cost their own slots),
* all register dependencies are honored verbatim (no renamer tricks:
  zero idioms, move elimination, and SVE merge renaming do not exist),
* scheduling data comes from :class:`~repro.mca.scheddata.MCASchedData`,
* default micro-op buffer is generous (MCA's ``--micro-op-queue``), so
  window effects rarely bite — another reason latency-heavy loops come
  out slower than hardware.

The headline number mirrors ``llvm-mca``'s *Block RThroughput* /
cycles-per-iteration from its summary view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..isa.instruction import Instruction
from ..isa.operands import MemoryOperand
from ..machine import MachineModel
from .scheddata import MCASchedData


@dataclass
class MCAResult:
    """Prediction summary (mirrors llvm-mca's summary view)."""

    cycles_per_iteration: float
    total_cycles: float
    iterations: int
    uops_per_iteration: int
    resource_pressure: dict[str, float]

    def summary(self) -> str:
        lines = [
            "llvm-mca-style summary",
            f"Iterations:        {self.iterations}",
            f"Total Cycles:      {self.total_cycles:.0f}",
            f"uOps Per Cycle:    "
            f"{self.uops_per_iteration * self.iterations / max(self.total_cycles, 1e-9):.2f}",
            f"Block RThroughput: {self.cycles_per_iteration:.2f}",
            "",
            "Resource pressure per iteration:",
        ]
        for p, v in sorted(self.resource_pressure.items()):
            if v > 1e-9:
                lines.append(f"  [{p:>5}] {v:6.2f}")
        return "\n".join(lines)


class MCASimulator:
    """Timeline simulation over generic scheduling data."""

    def __init__(
        self,
        model: MachineModel,
        sched: MCASchedData | None = None,
        assume_noalias: bool = True,
    ):
        self.model = model
        self.sched = sched or MCASchedData(model)
        #: mirror llvm-mca's -noalias default (no memory dependencies)
        self.assume_noalias = assume_noalias

    def run(
        self,
        instructions: Sequence[Instruction],
        iterations: int = 100,
        warmup: int = 20,
    ) -> MCAResult:
        from ..simulator.core import _PortIssueUnit

        resolved = [self.sched.resolve(i) for i in instructions]
        n_body = len(instructions)

        issue_unit = _PortIssueUnit(
            self.model.ports, window=float(self.model.scheduler_size)
        )
        port_busy = {p: 0.0 for p in self.model.ports}
        divider_free = 0.0
        reg_ready: dict[str, float] = {}
        mem_ready: dict[tuple, float] = {}

        dispatch_width = float(self.model.dispatch_width)
        frontend_time = 0.0
        last_retire = 0.0
        mark = 0.0
        uops_per_iter = sum(max(1, r.n_uops) for r in resolved)

        # Per-instruction dependency sets are loop-invariant; computing
        # them per dynamic instance dominated corpus-sweep wall time.
        reg_reads = [ins.register_reads() for ins in instructions]
        reg_writes = [ins.register_writes() for ins in instructions]
        if not self.assume_noalias:
            mem_reads = [self._mem_reads(ins) for ins in instructions]
            mem_writes = [self._mem_writes(ins) for ins in instructions]

        for it in range(warmup + iterations):
            for j in range(n_body):
                r = resolved[j]

                # unfused dispatch accounting
                slots = max(1, r.n_uops)
                frontend_time += slots / dispatch_width
                dispatch = frontend_time

                ready = dispatch
                for root in reg_reads[j]:
                    ready = max(ready, reg_ready.get(root, 0.0))
                # llvm-mca's default is -noalias=true: no memory
                # dependencies are modeled at all
                if not self.assume_noalias:
                    for key in mem_reads[j]:
                        ready = max(ready, mem_ready.get(key, 0.0))

                finish = ready
                for u in r.uops:
                    start, chosen = issue_unit.issue(u.ports, ready, u.cycles)
                    port_busy[chosen] += u.cycles
                    finish = max(finish, start)
                issue_unit.advance(dispatch)
                if r.divider:
                    start = max(divider_free, ready)
                    divider_free = start + r.divider
                    finish = max(finish, start)

                complete = finish + r.latency
                if r.n_loads:
                    complete += r.load_latency

                last_retire = max(last_retire, complete)
                for root in reg_writes[j]:
                    reg_ready[root] = complete
                if not self.assume_noalias:
                    for key in mem_writes[j]:
                        mem_ready[key] = complete
            if it == warmup - 1:
                mark = max(frontend_time, last_retire)

        total = max(frontend_time, last_retire)
        per_iter = (total - mark) / iterations
        pressure = {p: port_busy[p] / (warmup + iterations) for p in self.model.ports}
        return MCAResult(
            cycles_per_iteration=per_iter,
            total_cycles=total,
            iterations=iterations,
            uops_per_iteration=uops_per_iter,
            resource_pressure=pressure,
        )

    # memory aliasing keys are shared with the core pipeline (they used
    # to be duplicated verbatim here; test_simulator_plan.py asserts
    # the tables agree)

    @staticmethod
    def _mem_key(op: MemoryOperand) -> tuple:
        from ..simulator.plan import mem_key

        return mem_key(op)

    def _mem_reads(self, ins: Instruction) -> list[tuple]:
        from ..simulator.plan import mem_reads

        return mem_reads(ins)

    def _mem_writes(self, ins: Instruction) -> list[tuple]:
        from ..simulator.plan import mem_writes

        return mem_writes(ins)


def mca_predict(
    source: str,
    arch: str | MachineModel,
    *,
    iterations: int = 100,
    **kwargs,
) -> MCAResult:
    """Parse a loop body and produce the MCA-baseline prediction."""
    from ..lowering import lower

    block = lower(source, arch)
    return MCASimulator(block.model, **kwargs).run(
        block.instructions, iterations=iterations
    )
