"""AArch64 kernel emitter (NEON and SVE styles).

**NEON style** (armclang persona): pointer-bumped streams with
immediate-offset ``ldr q``/``ldur q`` loads, ``fadd/fmul/fmla v.2d``
arithmetic, unrolling by replicating the body at shifted displacements,
and a ``subs``/``b.ne`` counted loop.

**SVE style** (gcc persona, VL = 128 bit on Neoverse V2): a
``whilelo``-predicated loop over an element index, gather-free
``ld1d``/``st1d`` with ``[base, xidx, lsl #3]`` addressing, and
predicated arithmetic.  Stencil neighbours get their own pre-shifted
base pointers because the indexed form carries no displacement —
exactly what GCC emits.

Register conventions (set up outside the measured block):

=============  =====================================================
``x0``         store-stream pointer
``x1``–…       load-stream pointers
``x13/x14``    SVE element index / loop limit
``x15``        NEON down-counter
``v/z 0–7``    temporaries
``8–11``       accumulators / Gauss-Seidel carried value
``12``         π induction vector, ``13–15`` constants
``p0``         SVE loop predicate
=============  =====================================================
"""

from __future__ import annotations

from ..ir import Bin, Carried, Expr, IndexValue, Load, Scalar, collect_scalars
from ..personas import CompilerPersona
from ..suite import KernelSpec

# x0 is the store pointer; x13/x14/x15 are loop bookkeeping.  Under high
# pointer pressure (the 27-point stencil in SVE form) compilers spill
# into x29/x30 with -fomit-frame-pointer — so do we.
_PTR_POOL = (
    [f"x{i}" for i in range(1, 13)]
    + [f"x{i}" for i in range(16, 29)]
    + ["x29", "x30"]
)


class _RegFile:
    def __init__(self):
        self.free = list(range(8))

    def alloc(self) -> int:
        if not self.free:
            raise RuntimeError("aarch64 emitter ran out of vector temporaries")
        return self.free.pop(0)

    def release(self, idx: int) -> None:
        if idx < 8 and idx not in self.free:
            self.free.insert(0, idx)
            self.free.sort()


class AArch64Emitter:
    """Lower one kernel for one Arm persona/opt combination."""

    def __init__(self, kernel: KernelSpec, persona: CompilerPersona, opt: str,
                 precision: str = "dp"):
        if precision not in ("dp", "sp"):
            raise ValueError("precision must be 'dp' or 'sp'")
        self.k = kernel
        self.p = persona
        self.opt = opt
        self.precision = precision
        self.ebytes = 8 if precision == "dp" else 4
        self.cfg = persona.config(opt)
        self.vector = (
            self.cfg.vectorize
            and kernel.vectorizable
            and (not kernel.needs_fast_math or self.cfg.fast_math)
        )
        self.sve = self.vector and persona.vector_style == "sve"
        self.V = (16 // self.ebytes) if self.vector else 1
        self.U = 1 if (kernel.uses_index or kernel.has_carried_dependency or self.sve) else (
            self.cfg.unroll if self.vector else 1
        )
        self.n_acc = (
            max(1, min(self.cfg.n_accumulators, 4 if self.sve else self.U))
            if kernel.reduction
            else 0
        )
        self.regs = _RegFile()
        self.lines: list[str] = []
        self._assign_registers()

    # ------------------------------------------------------------------

    def _assign_registers(self) -> None:
        # SVE indexed addressing has no displacement field, so every
        # distinct (array, row, offset) needs a pre-shifted pointer;
        # NEON folds offsets into load displacements per (array, row).
        self.ptr: dict[tuple, str] = {}
        pool = iter(_PTR_POOL)
        if self.k.store:
            self.ptr[self._stream(Load(self.k.store, 0, 0))] = "x0"
        from ..ir import collect_loads

        for ld in collect_loads(self.k.expr):
            key = self._stream(ld)
            if key not in self.ptr:
                self.ptr[key] = next(pool)
        self.const: dict[str, int] = {}
        idx = 15
        for s in collect_scalars(self.k.expr):
            self.const[s.name] = idx
            idx -= 1
        if self.k.uses_index:
            self.const["__step"] = idx
            idx -= 1
            self.x_reg = 12
        self.acc = list(range(8, 8 + self.n_acc))
        self.carried = 8 if self.k.has_carried_dependency else None

    def _stream(self, ld: Load) -> tuple:
        if self.sve:
            return (ld.array, ld.row, ld.offset)
        return (ld.array, ld.row)

    # -- operand text ----------------------------------------------------------

    def _v(self, idx: int) -> str:
        e = "d" if self.precision == "dp" else "s"
        if self.sve:
            return f"z{idx}.{e}"
        if self.vector:
            return f"v{idx}.2d" if self.precision == "dp" else f"v{idx}.4s"
        return f"{e}{idx}"

    def _emit(self, text: str) -> None:
        self.lines.append(f"    {text}")

    def _emit_load(self, ld: Load, u: int, dst: int) -> None:
        e = "d" if self.precision == "dp" else "w"
        shift = 3 if self.precision == "dp" else 2
        if self.sve:
            base = self.ptr[(ld.array, ld.row, ld.offset)]
            self._emit(
                f"ld1{e} z{dst}.{'d' if e == 'd' else 's'}, p0/z, "
                f"[{base}, x13, lsl #{shift}]"
            )
            return
        base = self.ptr[(ld.array, ld.row)]
        disp = (ld.offset + u * self.V) * self.ebytes
        if self.vector:
            mn = "ldr" if disp % 16 == 0 and disp >= 0 else "ldur"
            self._emit(f"{mn} q{dst}, [{base}, #{disp}]" if disp else f"{mn} q{dst}, [{base}]")
        else:
            sreg = "d" if self.precision == "dp" else "s"
            mn = "ldr" if disp >= 0 else "ldur"
            self._emit(f"{mn} {sreg}{dst}, [{base}, #{disp}]" if disp else f"{mn} {sreg}{dst}, [{base}]")

    def _emit_store(self, src: int, u: int) -> None:
        if self.sve:
            e = "d" if self.precision == "dp" else "w"
            shift = 3 if self.precision == "dp" else 2
            arr = "d" if self.precision == "dp" else "s"
            self._emit(f"st1{e} z{src}.{arr}, p0, [x0, x13, lsl #{shift}]")
            return
        disp = u * self.V * self.ebytes
        if self.vector:
            mn = "str" if disp % 16 == 0 else "stur"
            self._emit(f"{mn} q{src}, [x0, #{disp}]" if disp else f"{mn} q{src}, [x0]")
        else:
            sreg = "d" if self.precision == "dp" else "s"
            self._emit(f"{sreg and 'str'} {sreg}{src}, [x0, #{disp}]" if disp else f"str {sreg}{src}, [x0]")

    # -- expression evaluation ---------------------------------------------------

    def _leaf(self, e: Expr, u: int) -> tuple[int, bool]:
        if isinstance(e, Load):
            t = self.regs.alloc()
            self._emit_load(e, u, t)
            return t, True
        if isinstance(e, Scalar):
            return self.const[e.name], False
        if isinstance(e, IndexValue):
            return self.x_reg, False
        if isinstance(e, Carried):
            assert self.carried is not None
            return self.carried, False
        raise TypeError(f"unexpected leaf {e!r}")

    def _fma_parts(self, e: Bin):
        if e.op != "+":
            return None
        if isinstance(e.rhs, Bin) and e.rhs.op == "*":
            return e.lhs, e.rhs.lhs, e.rhs.rhs
        if isinstance(e.lhs, Bin) and e.lhs.op == "*":
            return e.rhs, e.lhs.lhs, e.lhs.rhs
        return None

    def _eval(self, e: Expr, u: int, dst: int | None = None) -> tuple[int, bool]:
        if not isinstance(e, Bin):
            r, clob = self._leaf(e, u)
            if dst is not None and r != dst:
                self._emit(self._move(dst, r))
                if clob:
                    self.regs.release(r)
                return dst, False
            return r, clob

        fma = self._fma_parts(e)
        if fma is not None:
            addend, m1, m2 = fma
            # evaluate the multiply operands before materializing the
            # addend copy: the deep Horner-style chains would otherwise
            # hold one live temporary per nesting level
            if not self.vector:
                # scalar fmadd has a separate destination
                b, b_c = self._eval(m1, u)
                c, c_c = self._eval(m2, u)
                a, a_c = self._eval(addend, u)
                out = dst if dst is not None else (
                    a if a_c else (b if b_c else self.regs.alloc())
                )
                sr = "d" if self.precision == "dp" else "s"
                self._emit(f"fmadd {sr}{out}, {sr}{b}, {sr}{c}, {sr}{a}")
                for r, is_c in ((a, a_c), (b, b_c), (c, c_c)):
                    if is_c and r != out:
                        self.regs.release(r)
                return out, dst is None
            b, b_c = self._eval(m1, u)
            c, c_c = self._eval(m2, u)
            a, a_c = self._eval(addend, u)
            if dst is not None:
                if a != dst:
                    self._emit(self._move(dst, a))
                    if a_c:
                        self.regs.release(a)
                    a = dst
            elif not a_c:
                t = self.regs.alloc()
                self._emit(self._move(t, a))
                a = t
            if self.sve:
                arr = "d" if self.precision == "dp" else "s"
                self._emit(f"fmla z{a}.{arr}, p0/m, z{b}.{arr}, z{c}.{arr}")
            else:
                self._emit(f"fmla v{a}.2d, v{b}.2d, v{c}.2d")
            for r, is_c in ((b, b_c), (c, c_c)):
                if is_c:
                    self.regs.release(r)
            return a, dst is None

        name = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}[e.op]
        if e.lhs == e.rhs and e.op != "/":
            # identical operands (x*x): evaluate once
            lhs, lhs_c = self._eval(e.lhs, u)
            out = dst if dst is not None else (
                lhs if lhs_c else self.regs.alloc()
            )
            self._emit(f"{name} {self._v(out)}, {self._v(lhs)}, {self._v(lhs)}")
            if lhs_c and out != lhs:
                self.regs.release(lhs)
            return out, dst is None
        lhs, lhs_c = self._eval(e.lhs, u)
        rhs, rhs_c = self._eval(e.rhs, u)
        if e.op == "/" and self.sve:
            # SVE divide is predicated and destructive: movprfx + fdiv
            out = dst if dst is not None else (lhs if lhs_c else self.regs.alloc())
            if out != lhs:
                self._emit(f"movprfx z{out}, z{lhs}")
            arr = "d" if self.precision == "dp" else "s"
            self._emit(f"fdiv z{out}.{arr}, p0/m, z{out}.{arr}, z{rhs}.{arr}")
        else:
            out = dst if dst is not None else (
                lhs if lhs_c else (rhs if rhs_c else self.regs.alloc())
            )
            self._emit(f"{name} {self._v(out)}, {self._v(lhs)}, {self._v(rhs)}")
        for r, is_c in ((lhs, lhs_c), (rhs, rhs_c)):
            if is_c and r != out:
                self.regs.release(r)
        return out, dst is None

    def _move(self, dst: int, src: int) -> str:
        if self.sve:
            arr = "d" if self.precision == "dp" else "s"
            return f"mov z{dst}.{arr}, z{src}.{arr}"
        if self.vector:
            return f"mov v{dst}.16b, v{src}.16b"
        sr = "d" if self.precision == "dp" else "s"
        return f"fmov {sr}{dst}, {sr}{src}"

    # -- kernel shapes --------------------------------------------------------------

    def _emit_reduction_step(self, u: int) -> None:
        acc = self.acc[u % self.n_acc]
        e = self.k.expr
        if isinstance(e, Bin) and e.op == "*":
            if e.lhs == e.rhs:  # sum of squares: one load, squared FMA
                b, b_c = self._eval(e.lhs, u)
                c, c_c = b, False
            else:
                b, b_c = self._eval(e.lhs, u)
                c, c_c = self._eval(e.rhs, u)
            if self.sve:
                arr = "d" if self.precision == "dp" else "s"
                self._emit(f"fmla z{acc}.{arr}, p0/m, z{b}.{arr}, z{c}.{arr}")
            elif self.vector:
                self._emit(f"fmla v{acc}.2d, v{b}.2d, v{c}.2d")
            else:
                self._emit(f"fmadd d{acc}, d{b}, d{c}, d{acc}")
            for r, is_c in ((b, b_c), (c, c_c)):
                if is_c:
                    self.regs.release(r)
            return
        val, clob = self._eval(e, u)
        if self.sve:
            arr = "d" if self.precision == "dp" else "s"
            self._emit(f"fadd z{acc}.{arr}, p0/m, z{acc}.{arr}, z{val}.{arr}")
        else:
            self._emit(f"fadd {self._v(acc)}, {self._v(acc)}, {self._v(val)}")
        if clob:
            self.regs.release(val)

    def _emit_body(self, u: int) -> None:
        if self.k.reduction:
            self._emit_reduction_step(u)
        elif isinstance(self.k.expr, Scalar):  # INIT
            self._emit_store(self.const[self.k.expr.name], u)
        elif self.k.has_carried_dependency:
            assert self.carried is not None
            if self.p.gs_move_chain:
                val, clob = self._eval(self.k.expr, u)
                self._emit_store(val, u)
                sr = "d" if self.precision == "dp" else "s"
                self._emit(f"fmov {sr}{self.carried}, {sr}{val}")
                if clob:
                    self.regs.release(val)
            else:
                self._eval(self.k.expr, u, dst=self.carried)
                self._emit_store(self.carried, u)
        else:
            val, clob = self._eval(self.k.expr, u)
            self._emit_store(val, u)
            if clob:
                self.regs.release(val)

    # -- driver -----------------------------------------------------------------------

    def generate(self) -> str:
        self.lines = [".Lloop:"]
        for u in range(self.U):
            self._emit_body(u)
        if self.k.uses_index:
            step = self.const["__step"]
            if self.sve:
                arr = "d" if self.precision == "dp" else "s"
                self._emit(f"fadd z{self.x_reg}.{arr}, z{self.x_reg}.{arr}, z{step}.{arr}")
            else:
                self._emit(
                    f"fadd {self._v(self.x_reg)}, {self._v(self.x_reg)}, {self._v(step)}"
                )
        if self.sve:
            if self.precision == "dp":
                self._emit("incd x13")
                self._emit("whilelo p0.d, x13, x14")
            else:
                self._emit("incw x13")
                self._emit("whilelo p0.s, x13, x14")
            self._emit("b.any .Lloop")
        else:
            step_bytes = self.U * self.V * 8
            for base in sorted(set(self.ptr.values()), key=lambda x: int(x[1:])):
                self._emit(f"add {base}, {base}, #{step_bytes}")
            self._emit(f"subs x15, x15, #{self.U * self.V}")
            self._emit("b.ne .Lloop")
        return "\n".join(self.lines) + "\n"
