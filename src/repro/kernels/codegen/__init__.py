"""Kernel → assembly lowering under compiler personas.

:func:`generate_assembly` is the single entry point: it selects the
x86 or AArch64 emitter and produces the innermost-loop body text (label
through backward branch) — exactly the block OSACA-style analysis and
the core simulator consume.
"""

from __future__ import annotations

from ..personas import CompilerPersona, PERSONAS
from ..suite import KernelSpec, get_kernel
from .x86 import X86Emitter
from .aarch64 import AArch64Emitter


def generate_assembly(
    kernel: str | KernelSpec,
    persona: str | CompilerPersona,
    opt: str,
    uarch: str,
    precision: str = "dp",
) -> str:
    """Lower a kernel to assembly.

    Parameters
    ----------
    kernel:
        Kernel name (see :data:`repro.kernels.suite.KERNELS`) or spec.
    persona:
        Compiler persona name or instance; must match the target ISA.
    opt:
        ``"O1"`` | ``"O2"`` | ``"O3"`` | ``"Ofast"``.
    uarch:
        Target microarchitecture (``golden_cove``/``zen4``/
        ``neoverse_v2``) — affects vector width selection.
    precision:
        ``"dp"`` (the paper's corpus) or ``"sp"`` — single-precision
        variants double the elements per vector.
    """
    if isinstance(kernel, KernelSpec):
        k = kernel
    else:
        from ..extended import get_extended_kernel

        k = get_extended_kernel(kernel)  # paper suite + extensions
    p = persona if isinstance(persona, CompilerPersona) else PERSONAS[persona]
    if uarch in ("neoverse_v2",):
        if p.isa != "aarch64":
            raise ValueError(f"persona {p.name} does not target aarch64")
        return AArch64Emitter(k, p, opt, precision).generate()
    if p.isa != "x86":
        raise ValueError(f"persona {p.name} does not target x86")
    return X86Emitter(k, p, opt, uarch, precision).generate()


__all__ = ["generate_assembly", "X86Emitter", "AArch64Emitter"]
