"""x86-64 (AT&T) kernel emitter.

Produces the innermost loop body a GCC/Clang/ICX-style compiler would
emit for a streaming kernel: indexed addressing off per-stream base
pointers (``disp(%base,%rcx,8)``), VEX three-operand arithmetic with
one folded memory operand, FMA contraction, optional unrolling, and
multi-accumulator reductions under ``-Ofast`` reassociation.

Register conventions (all set up outside the measured block):

=============  ===================================================
``%rdi``       store-stream base pointer
``%rax`` …     load-stream base pointers (one per (array, row))
``%rcx``       element index, ``%rdx`` loop limit
``xmm/ymm/zmm 0–7``   expression temporaries
``8–11``       reduction accumulators / Gauss-Seidel carried value
``12``         π induction value, ``13–15`` loop-invariant constants
=============  ===================================================
"""

from __future__ import annotations

from ..ir import Bin, Carried, Expr, IndexValue, Load, Scalar, collect_scalars
from ..personas import CompilerPersona
from ..suite import KernelSpec

_PTR_POOL = ["rax", "rbx", "rsi", "r8", "r9", "r10", "r11", "r12", "r13",
             "r14", "r15", "rbp"]
_WIDTH_ELEMS = {"zmm": 8, "ymm": 4, "xmm": 2}


class _RegFile:
    """Temp-register free list over indices 0..7."""

    def __init__(self, prefix: str):
        self.prefix = prefix
        self.free = list(range(8))

    def alloc(self) -> str:
        if not self.free:
            raise RuntimeError("x86 emitter ran out of vector temporaries")
        return f"{self.prefix}{self.free.pop(0)}"

    def release(self, reg: str) -> None:
        idx = int(reg[len(self.prefix):])
        if idx < 8 and idx not in self.free:
            self.free.insert(0, idx)
            self.free.sort()

    def is_temp(self, reg: str) -> bool:
        return reg.startswith(self.prefix) and int(reg[len(self.prefix):]) < 8


class X86Emitter:
    """Lower one kernel for one persona/opt/µarch combination."""

    def __init__(self, kernel: KernelSpec, persona: CompilerPersona, opt: str,
                 uarch: str, precision: str = "dp"):
        if precision not in ("dp", "sp"):
            raise ValueError("precision must be 'dp' or 'sp'")
        self.k = kernel
        self.p = persona
        self.opt = opt
        self.precision = precision
        self.ebytes = 8 if precision == "dp" else 4
        self.cfg = persona.config(opt)
        self.vector = (
            self.cfg.vectorize
            and kernel.vectorizable
            and (not kernel.needs_fast_math or self.cfg.fast_math)
        )
        self.wclass = persona.width_for(uarch) if self.vector else "xmm"
        self.V = (
            _WIDTH_ELEMS[self.wclass] * (8 // self.ebytes)
            if self.vector
            else 1
        )
        if self.vector:
            self.sfx = "pd" if precision == "dp" else "ps"
        else:
            self.sfx = "sd" if precision == "dp" else "ss"
        self.U = 1 if (kernel.uses_index or kernel.has_carried_dependency) else (
            self.cfg.unroll if self.vector else 1
        )
        self.n_acc = (
            max(1, min(self.cfg.n_accumulators, self.U))
            if kernel.reduction
            else 0
        )
        self.regs = _RegFile(self.wclass)
        self.lines: list[str] = []
        self._assign_registers()

    # ------------------------------------------------------------------

    def _assign_registers(self) -> None:
        self.ptr: dict[tuple[str, int], str] = {}
        if self.k.store:
            self.ptr[(self.k.store, 0)] = "rdi"
        pool = iter(_PTR_POOL)
        for stream in self.k.arrays:
            if stream not in self.ptr:
                self.ptr[stream] = next(pool)
        self.const: dict[str, str] = {}
        idx = 15
        for s in collect_scalars(self.k.expr):
            self.const[s.name] = f"{self.wclass}{idx}"
            idx -= 1
        if self.k.uses_index:
            self.const["__step"] = f"{self.wclass}{idx}"
            idx -= 1
            self.x_reg = f"{self.wclass}12"
        self.acc = [f"{self.wclass}{8 + i}" for i in range(self.n_acc)]
        self.carried = f"{self.wclass}8" if self.k.has_carried_dependency else None

    # ------------------------------------------------------------------

    def _mem(self, load: Load, u: int) -> str:
        base = self.ptr[(load.array, load.row)]
        eb = self.ebytes
        disp = (load.offset + u * self.V) * eb
        return f"{disp}(%{base},%rcx,{eb})" if disp else f"(%{base},%rcx,{eb})"

    def _store_mem(self, u: int) -> str:
        eb = self.ebytes
        disp = u * self.V * eb
        return f"{disp}(%rdi,%rcx,{eb})" if disp else f"(%rdi,%rcx,{eb})"

    def _emit(self, text: str) -> None:
        self.lines.append(f"    {text}")

    def _mov(self) -> str:
        if self.vector:
            return "vmovupd" if self.precision == "dp" else "vmovups"
        return "vmovsd" if self.precision == "dp" else "vmovss"

    # -- expression evaluation ------------------------------------------------

    def _leaf_reg(self, e: Expr, u: int) -> tuple[str, bool]:
        """Evaluate a leaf; returns (register, clobberable)."""
        if isinstance(e, Load):
            t = self.regs.alloc()
            self._emit(f"{self._mov()} {self._mem(e, u)}, %{t}")
            return t, True
        if isinstance(e, Scalar):
            return self.const[e.name], False
        if isinstance(e, IndexValue):
            return self.x_reg, False
        if isinstance(e, Carried):
            assert self.carried is not None
            return self.carried, False
        raise TypeError(f"unexpected leaf {e!r}")

    def _fma_parts(self, e: Bin):
        """Match ``x + a*b`` → (addend, a, b) or None."""
        if e.op != "+":
            return None
        if isinstance(e.rhs, Bin) and e.rhs.op == "*":
            return e.lhs, e.rhs.lhs, e.rhs.rhs
        if isinstance(e.lhs, Bin) and e.lhs.op == "*":
            return e.rhs, e.lhs.lhs, e.lhs.rhs
        return None

    def _operand(self, e: Expr, u: int, fold_ok: bool) -> tuple[str, bool, bool]:
        """Operand for an arithmetic op: (text, is_temp_reg, folded_mem)."""
        if fold_ok and isinstance(e, Load) and self.p.fold_memory:
            return self._mem(e, u), False, True
        r, clob = self._eval(e, u)
        return f"%{r}", clob, False

    def _eval(self, e: Expr, u: int, dst: str | None = None) -> tuple[str, bool]:
        """Evaluate an expression; returns (register, clobberable).

        ``dst`` pins the result register (used to land the Gauss-Seidel
        result in the carried register without an extra move).
        """
        if not isinstance(e, Bin):
            r, clob = self._leaf_reg(e, u)
            if dst is not None and r != dst:
                self._emit(f"vmovap{'d' if self.vector else 'd'} %{r}, %{dst}")
                if clob:
                    self.regs.release(r)
                return dst, False
            return r, clob

        fma = self._fma_parts(e)
        if fma is not None:
            addend, m1, m2 = fma
            # destination starts as the addend and must be clobberable
            a_reg, a_clob = self._eval(addend, u)
            if dst is not None:
                if a_reg != dst:
                    self._emit(f"vmovapd %{a_reg}, %{dst}")
                    if a_clob:
                        self.regs.release(a_reg)
                    a_reg = dst
            elif not a_clob:
                t = self.regs.alloc()
                self._emit(f"vmovapd %{a_reg}, %{t}")
                a_reg = t
            if m1 == m2:
                # squared multiplicand (x*x): evaluate once, use twice
                r, r_t = self._eval(m1, u)
                self._emit(f"vfmadd231{self.sfx} %{r}, %{r}, %{a_reg}")
                if r_t:
                    self.regs.release(r)
                return a_reg, dst is None
            # one multiply operand may fold from memory; AT&T puts the
            # memory operand first (it is Intel src3)
            o1, o1_t, folded = self._operand(m1, u, fold_ok=True)
            o2, o2_t, folded2 = self._operand(m2, u, fold_ok=not folded)
            if folded2:
                o1, o2 = o2, o1
                o1_t, o2_t = o2_t, o1_t
            self._emit(f"vfmadd231{self.sfx} {o1}, {o2}, %{a_reg}")
            for o, is_t in ((o1, o1_t), (o2, o2_t)):
                if is_t:
                    self.regs.release(o.lstrip("%"))
            return a_reg, dst is None

        op_name = {"+": "add", "-": "sub", "*": "mul", "/": "div"}[e.op]
        if e.lhs == e.rhs:
            # identical operands (x*x in norm2/pi): evaluate once
            lhs_r, lhs_clob = self._eval(e.lhs, u)
            out = dst if dst is not None else (
                lhs_r if lhs_clob else self.regs.alloc()
            )
            self._emit(f"v{op_name}{self.sfx} %{lhs_r}, %{lhs_r}, %{out}")
            if lhs_clob and out != lhs_r:
                self.regs.release(lhs_r)
            return out, dst is None and out != self.carried
        lhs_r, lhs_clob = self._eval(e.lhs, u)
        rhs_op, rhs_t, _ = self._operand(e.rhs, u, fold_ok=e.op in "+*")
        if dst is not None:
            out = dst
        elif lhs_clob:
            out = lhs_r
        else:
            out = self.regs.alloc()
        self._emit(f"v{op_name}{self.sfx} {rhs_op}, %{lhs_r}, %{out}")
        if rhs_t:
            self.regs.release(rhs_op.lstrip("%"))
        if lhs_clob and out != lhs_r:
            self.regs.release(lhs_r)
        return out, dst is None and out != self.carried

    # -- kernel shapes ----------------------------------------------------------

    def _emit_reduction_step(self, u: int) -> None:
        acc = self.acc[u % self.n_acc]
        e = self.k.expr
        if isinstance(e, Load) and self.p.fold_memory:
            self._emit(f"vadd{self.sfx} {self._mem(e, u)}, %{acc}, %{acc}")
            return
        if isinstance(e, Bin) and e.op == "*":
            if e.lhs == e.rhs:  # sum of squares: one load, squared FMA
                r, r_t = self._eval(e.lhs, u)
                self._emit(f"vfmadd231{self.sfx} %{r}, %{r}, %{acc}")
                if r_t:
                    self.regs.release(r)
                return
            o1, t1, folded = self._operand(e.lhs, u, fold_ok=True)
            o2, t2, _ = self._operand(e.rhs, u, fold_ok=not folded)
            self._emit(f"vfmadd231{self.sfx} {o1}, {o2}, %{acc}")
            for o, is_t in ((o1, t1), (o2, t2)):
                if is_t:
                    self.regs.release(o.lstrip("%"))
            return
        val, clob = self._eval(e, u)
        self._emit(f"vadd{self.sfx} %{val}, %{acc}, %{acc}")
        if clob:
            self.regs.release(val)

    def _emit_body(self, u: int) -> None:
        if self.k.reduction:
            self._emit_reduction_step(u)
        elif isinstance(self.k.expr, Scalar):  # INIT: store a constant
            self._emit(
                f"{self._mov()} %{self.const[self.k.expr.name]}, {self._store_mem(u)}"
            )
        elif self.k.has_carried_dependency:
            assert self.carried is not None
            self._eval(self.k.expr, u, dst=self.carried)
            self._emit(f"{self._mov()} %{self.carried}, {self._store_mem(u)}")
        else:
            val, clob = self._eval(self.k.expr, u)
            self._emit(f"{self._mov()} %{val}, {self._store_mem(u)}")
            if clob:
                self.regs.release(val)

    # -- driver -------------------------------------------------------------------

    def generate(self) -> str:
        self.lines = [".Lloop:"]
        for u in range(self.U):
            self._emit_body(u)
        if self.k.uses_index:
            step = self.const["__step"]
            self._emit(f"vadd{self.sfx} %{step}, %{self.x_reg}, %{self.x_reg}")
        self._emit(f"addq ${self.U * self.V}, %rcx")
        self._emit("cmpq %rdx, %rcx")
        self._emit("jb .Lloop")
        return "\n".join(self.lines) + "\n"
