"""The validation kernel suite and its code generator.

The paper validates its in-core models with 13 streaming
microbenchmarks (ADD, COPY, INIT, UPDATE, SUM reduction, STREAM triad,
Schönauer triad, π by integration, Gauss-Seidel 2D 5-point, and Jacobi
2D 5-point / 3D 7-point / 3D 11-point / 3D 27-point stencils), each
compiled by several compilers at ``-O1``/``-O2``/``-O3``/``-Ofast`` —
416 test blocks in total.

Here the kernels are defined once as expression-tree IR
(:mod:`~repro.kernels.ir`, :mod:`~repro.kernels.suite`) and lowered to
real assembly by :mod:`~repro.kernels.codegen` under *compiler
personas* (:mod:`~repro.kernels.personas`) that mimic the
vectorization, unrolling, FMA-contraction, and reduction-reassociation
habits of GCC, Clang, ICX, and Arm Clang at each optimization level.
:mod:`~repro.kernels.corpus` enumerates the full 416-variant corpus.
"""

from .ir import Expr, Load, Scalar, Carried, IndexValue, Bin, count_flops, collect_loads
from .suite import KERNELS, KernelSpec, get_kernel
from .extended import EXTENDED_KERNELS, all_kernels, get_extended_kernel, register_kernel
from .personas import PERSONAS, CompilerPersona, personas_for_isa, OPT_LEVELS
from .codegen import generate_assembly
from .corpus import CorpusEntry, enumerate_corpus

__all__ = [
    "Expr",
    "Load",
    "Scalar",
    "Carried",
    "IndexValue",
    "Bin",
    "count_flops",
    "collect_loads",
    "KERNELS",
    "KernelSpec",
    "get_kernel",
    "EXTENDED_KERNELS",
    "all_kernels",
    "get_extended_kernel",
    "register_kernel",
    "PERSONAS",
    "CompilerPersona",
    "personas_for_isa",
    "OPT_LEVELS",
    "generate_assembly",
    "CorpusEntry",
    "enumerate_corpus",
]
