"""The validation corpus: every (machine, kernel, persona, opt) block.

The paper's matrix: 13 kernels x 4 optimization levels x {GCC, Clang,
ICX on each of the two x86 machines; GCC and Arm Clang on Grace} =
13 x 4 x (3 + 3 + 2) = **416 test blocks**, of which a subset is unique
assembly (different compilers/levels frequently produce the same inner
loop — the paper counts 290 unique representations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .codegen import generate_assembly
from .personas import OPT_LEVELS, personas_for_isa
from .suite import KERNELS

#: machine -> (uarch, isa)
MACHINES = {
    "spr": ("golden_cove", "x86"),
    "genoa": ("zen4", "x86"),
    "gcs": ("neoverse_v2", "aarch64"),
}


@dataclass(frozen=True)
class CorpusEntry:
    """One test block of the validation corpus."""

    machine: str
    uarch: str
    kernel: str
    persona: str
    opt: str
    assembly: str

    @property
    def test_id(self) -> str:
        return f"{self.machine}/{self.kernel}/{self.persona}/{self.opt}"


def enumerate_corpus(
    machines: tuple[str, ...] = ("spr", "genoa", "gcs"),
    kernels: tuple[str, ...] | None = None,
    precision: str = "dp",
) -> list[CorpusEntry]:
    """Generate the full corpus (416 entries by default).

    ``precision="sp"`` produces the single-precision variant corpus —
    an extension beyond the paper's double-precision validation.
    """
    out: list[CorpusEntry] = []
    kernel_names = tuple(kernels) if kernels else tuple(KERNELS)
    for machine in machines:
        uarch, isa = MACHINES[machine]
        for persona in personas_for_isa(isa):
            for kernel in kernel_names:
                for opt in OPT_LEVELS:
                    asm = generate_assembly(
                        kernel, persona, opt, uarch, precision=precision
                    )
                    out.append(
                        CorpusEntry(
                            machine=machine,
                            uarch=uarch,
                            kernel=kernel,
                            persona=persona.name,
                            opt=opt,
                            assembly=asm,
                        )
                    )
    return out


def unique_assembly_count(entries: list[CorpusEntry]) -> int:
    """Number of distinct assembly representations in the corpus."""
    return len({e.assembly for e in entries})
