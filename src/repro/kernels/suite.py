"""The paper's 13 validation kernels.

Each :class:`KernelSpec` couples the per-element expression tree with
the information the harness needs: FLOPs and traffic per element
(for Roofline/ECM), whether the kernel is a reduction, whether it can
be vectorized at all (Gauss-Seidel cannot), and whether vectorization
needs value-unsafe reassociation (π and SUM need ``-Ofast``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .ir import (
    Bin,
    Carried,
    Expr,
    IndexValue,
    Load,
    Scalar,
    balanced_sum,
    collect_loads,
    count_flops,
    has_carried,
    has_division,
    has_index_value,
)


@dataclass(frozen=True)
class KernelSpec:
    """One validation kernel."""

    name: str
    description: str
    expr: Expr
    #: output array; ``None`` for pure reductions
    store: Optional[str]
    #: reduction operator accumulated across iterations ('+' or None)
    reduction: Optional[str] = None
    #: False for loop-carried kernels (Gauss-Seidel)
    vectorizable: bool = True
    #: vectorization requires -Ofast-style reassociation
    needs_fast_math: bool = False

    @property
    def flops_per_element(self) -> int:
        n = count_flops(self.expr)
        if self.reduction:
            n += 1  # the accumulate itself
        return n

    @property
    def loads_per_element(self) -> int:
        return len(collect_loads(self.expr)) + (1 if has_carried(self.expr) else 0) - (
            1 if has_carried(self.expr) else 0
        )

    @property
    def arrays(self) -> tuple[tuple[str, int], ...]:
        """Distinct (array, row) streams read by the kernel."""
        seen: dict[tuple[str, int], None] = {}
        for ld in collect_loads(self.expr):
            seen.setdefault((ld.array, ld.row), None)
        return tuple(seen)

    @property
    def bytes_per_element(self) -> int:
        """Traffic per element assuming write-allocate for the store."""
        n_loads = len(collect_loads(self.expr))
        n_store = 2 if self.store else 0  # WA: read + write
        return 8 * (n_loads + n_store)

    @property
    def has_division(self) -> bool:
        return has_division(self.expr)

    @property
    def has_carried_dependency(self) -> bool:
        return has_carried(self.expr)

    @property
    def uses_index(self) -> bool:
        return has_index_value(self.expr)


def _jacobi_weights(n: int) -> Scalar:
    return Scalar("w", 1.0 / n)


def _build_kernels() -> dict[str, KernelSpec]:
    A = lambda off=0, row=0, arr="a": Load(arr, off, row)
    kernels: list[KernelSpec] = []

    kernels.append(
        KernelSpec(
            name="add",
            description="c[i] = a[i] + b[i]",
            expr=Load("a") + Load("b"),
            store="c",
        )
    )
    kernels.append(
        KernelSpec(
            name="copy",
            description="c[i] = a[i]",
            expr=Load("a"),
            store="c",
        )
    )
    kernels.append(
        KernelSpec(
            name="init",
            description="a[i] = s (array initialization, store-only)",
            expr=Scalar("s", 1.0),
            store="a",
        )
    )
    kernels.append(
        KernelSpec(
            name="update",
            description="a[i] = a[i] * s",
            expr=Load("a") * Scalar("s", 3.0),
            store="a",
        )
    )
    kernels.append(
        KernelSpec(
            name="sum",
            description="s += a[i] (sum reduction)",
            expr=Load("a"),
            store=None,
            reduction="+",
            needs_fast_math=True,
        )
    )
    kernels.append(
        KernelSpec(
            name="striad",
            description="STREAM triad: a[i] = b[i] + s * c[i]",
            expr=Load("b") + Scalar("s", 3.0) * Load("c"),
            store="a",
        )
    )
    kernels.append(
        KernelSpec(
            name="sch_triad",
            description="Schoenauer triad: a[i] = b[i] + c[i] * d[i]",
            expr=Load("b") + Load("c") * Load("d"),
            store="a",
        )
    )
    kernels.append(
        KernelSpec(
            name="pi",
            description="pi by integration: x=(i+0.5)h; s += 4/(1+x*x)",
            expr=Scalar("four", 4.0)
            / (Scalar("one", 1.0) + IndexValue() * IndexValue()),
            store=None,
            reduction="+",
            needs_fast_math=True,
        )
    )
    kernels.append(
        KernelSpec(
            name="gs2d5pt",
            description=(
                "Gauss-Seidel 2D 5-point: phi[k][i] = 0.25*(phi[k][i-1]' + "
                "phi[k][i+1] + phi[k-1][i]' + phi[k+1][i])"
            ),
            expr=Scalar("w", 0.25)
            * (
                (Carried() + Load("phi", 1, row=0))
                + (Load("phi", 0, row=-1) + Load("phi", 0, row=1))
            ),
            store="phi",
            vectorizable=False,
        )
    )
    # Jacobi 2D 5-point
    j2d = [
        Load("a", -1, 0),
        Load("a", 1, 0),
        Load("a", 0, -1),
        Load("a", 0, 1),
    ]
    kernels.append(
        KernelSpec(
            name="j2d5pt",
            description="Jacobi 2D 5-point stencil",
            expr=_jacobi_weights(4) * balanced_sum(j2d),
            store="b",
        )
    )
    # Jacobi 3D 7-point: rows are (j, k) plane offsets flattened to ids
    # row 0 = (0,0), ±1 = j-neighbours, ±2 = k-plane neighbours.
    j3d7 = [
        Load("a", 0, 0),
        Load("a", -1, 0),
        Load("a", 1, 0),
        Load("a", 0, -1),
        Load("a", 0, 1),
        Load("a", 0, -2),
        Load("a", 0, 2),
    ]
    kernels.append(
        KernelSpec(
            name="j3d7pt",
            description="Jacobi 3D 7-point stencil",
            expr=_jacobi_weights(7) * balanced_sum(j3d7),
            store="b",
        )
    )
    # Jacobi 3D 11-point: 7-point plus radius-2 in the leading dimension
    # and the j direction.
    j3d11 = j3d7 + [
        Load("a", -2, 0),
        Load("a", 2, 0),
        Load("a", 0, -3),
        Load("a", 0, 3),
    ]
    kernels.append(
        KernelSpec(
            name="j3d11pt",
            description="Jacobi 3D 11-point stencil (radius 2 in two dims)",
            expr=_jacobi_weights(11) * balanced_sum(j3d11),
            store="b",
        )
    )
    # Jacobi 3D 27-point: the full 3x3x3 neighbourhood — 9 rows
    # (3 j-offsets x 3 k-offsets), 3 element offsets each.
    j3d27 = [
        Load("a", off, row)
        for row in range(-4, 5)
        for off in (-1, 0, 1)
    ]
    kernels.append(
        KernelSpec(
            name="j3d27pt",
            description="Jacobi 3D 27-point stencil",
            expr=_jacobi_weights(27) * balanced_sum(j3d27),
            store="b",
        )
    )
    return {k.name: k for k in kernels}


KERNELS: dict[str, KernelSpec] = _build_kernels()

assert len(KERNELS) == 13, "the paper's suite has 13 kernels"


def get_kernel(name: str) -> KernelSpec:
    try:
        return KERNELS[name]
    except KeyError:
        raise ValueError(f"unknown kernel {name!r}; known: {sorted(KERNELS)}") from None
