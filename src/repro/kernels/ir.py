"""Expression-tree IR for streaming loop kernels.

A kernel computes one value per loop index ``i`` from loaded stream
elements, loop-invariant scalars, the index itself (π kernel), and —
for Gauss-Seidel — the value produced by the *previous* iteration.
The tree is deliberately minimal: binary ``+ - * /`` over leaves.

Loads carry a ``row`` tag: stencil neighbours in other matrix rows /
planes live at runtime-dependent distances, so code generators give
each (array, row) pair its own base pointer, while ``offset`` (in
elements) becomes the immediate displacement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union


class Expr:
    """Base class for kernel expression nodes."""

    def __add__(self, other: "Expr") -> "Bin":
        return Bin("+", self, other)

    def __sub__(self, other: "Expr") -> "Bin":
        return Bin("-", self, other)

    def __mul__(self, other: "Expr") -> "Bin":
        return Bin("*", self, other)

    def __truediv__(self, other: "Expr") -> "Bin":
        return Bin("/", self, other)


@dataclass(frozen=True)
class Load(Expr):
    """Stream element ``array[row][i + offset]``."""

    array: str
    offset: int = 0
    row: int = 0


@dataclass(frozen=True)
class Scalar(Expr):
    """Loop-invariant scalar held in a register (e.g. ``0.25``)."""

    name: str
    value: float = 0.0


@dataclass(frozen=True)
class IndexValue(Expr):
    """The induction value ``x_i = (i + 0.5) * h`` of the π kernel.

    Generators materialize it as a floating-point induction variable
    advanced by ``h`` (scalar) or by ``VL·h`` (vectorized).
    """


@dataclass(frozen=True)
class Carried(Expr):
    """The value computed by the previous iteration (Gauss-Seidel)."""


@dataclass(frozen=True)
class Bin(Expr):
    op: str  #: one of ``+ - * /``
    lhs: Expr
    rhs: Expr

    def __post_init__(self):
        if self.op not in "+-*/":
            raise ValueError(f"unknown operator {self.op!r}")


def walk(expr: Expr) -> Iterator[Expr]:
    """Pre-order traversal."""
    yield expr
    if isinstance(expr, Bin):
        yield from walk(expr.lhs)
        yield from walk(expr.rhs)


def count_flops(expr: Expr) -> int:
    """Floating-point operations per element (FMA counts as 2)."""
    return sum(1 for e in walk(expr) if isinstance(e, Bin))


def collect_loads(expr: Expr) -> list[Load]:
    """All loads in evaluation order (duplicates removed)."""
    seen: dict[Load, None] = {}
    for e in walk(expr):
        if isinstance(e, Load):
            seen.setdefault(e, None)
    return list(seen)


def collect_scalars(expr: Expr) -> list[Scalar]:
    seen: dict[Scalar, None] = {}
    for e in walk(expr):
        if isinstance(e, Scalar):
            seen.setdefault(e, None)
    return list(seen)


def has_division(expr: Expr) -> bool:
    return any(isinstance(e, Bin) and e.op == "/" for e in walk(expr))


def has_carried(expr: Expr) -> bool:
    return any(isinstance(e, Carried) for e in walk(expr))


def has_index_value(expr: Expr) -> bool:
    return any(isinstance(e, IndexValue) for e in walk(expr))


def balanced_sum(terms: list[Expr]) -> Expr:
    """Reduction tree of minimum depth (the shape compilers build)."""
    if not terms:
        raise ValueError("empty sum")
    work = list(terms)
    while len(work) > 1:
        nxt = []
        for k in range(0, len(work) - 1, 2):
            nxt.append(Bin("+", work[k], work[k + 1]))
        if len(work) % 2:
            nxt.append(work[-1])
        work = nxt
    return work[0]
