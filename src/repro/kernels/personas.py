"""Compiler personas.

The validation corpus needs *realistically diverse* assembly for the
same kernels.  Each persona captures the code-generation habits of one
real toolchain at the paper's four optimization levels:

=========  =========================================================
persona    habits
=========  =========================================================
gcc        x86: scalar at -O1; 512-bit vectors on SPR / 256-bit on
           Genoa from -O2; no extra unrolling; reductions stay scalar
           until -Ofast and then use a single vector accumulator
clang      256-bit everywhere; interleaves (unroll 2 at -O2, 4 at
           -O3); -Ofast reassociates reductions over 4 accumulators
icx        512-bit on SPR (zmm-hungry), 256-bit on Genoa; moderate
           unrolling; 4 accumulators at -Ofast
gcc-arm    SVE (VL=128, whilelo-predicated loops) from -O2; single
           accumulator; 2 accumulators at -Ofast
armclang   NEON with aggressive interleaving (2/4-way); 4
           accumulators at -Ofast; rotates the Gauss-Seidel carried
           value through an ``fmov`` (the register move the V2
           renamer eliminates but a static model must count)
=========  =========================================================

All personas contract ``a*b+c`` to FMA at every level (the GCC/Clang
default ``-ffp-contract=fast``/``on`` behaviour for these kernels).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

#: the paper's optimization levels
OPT_LEVELS = ("O1", "O2", "O3", "Ofast")


@dataclass(frozen=True)
class OptConfig:
    """Code-generation knobs at one optimization level."""

    vectorize: bool
    unroll: int = 1
    n_accumulators: int = 1
    fast_math: bool = False


@dataclass(frozen=True)
class CompilerPersona:
    """One compiler's habits across optimization levels."""

    name: str
    isa: str  #: "x86" | "aarch64"
    configs: dict[str, OptConfig]
    #: x86: microarchitecture -> vector register class at full opt
    vector_width: dict[str, str] = field(default_factory=dict)
    #: aarch64 vector style: "neon" | "sve"
    vector_style: str = "neon"
    #: fold one memory operand into arithmetic instructions (x86)
    fold_memory: bool = True
    #: rotate the Gauss-Seidel carried value through an fmov (aarch64)
    gs_move_chain: bool = False

    def config(self, opt: str) -> OptConfig:
        try:
            return self.configs[opt]
        except KeyError:
            raise ValueError(
                f"unknown optimization level {opt!r}; known: {OPT_LEVELS}"
            ) from None

    def width_for(self, uarch: str) -> str:
        """Vector register class for an x86 target."""
        return self.vector_width.get(uarch, "ymm")

    def with_config(self, opt: str, **changes) -> "CompilerPersona":
        """A variant persona with one optimization level's knobs edited.

        This is how the fuzzer (:mod:`repro.fuzz`) composes mutations
        onto the real toolchain personas — e.g. forcing a different
        unroll factor or accumulator count at one level while keeping
        every other habit of the persona intact.  The persona is
        immutable; the variant is a new instance.
        """
        cfg = dataclasses.replace(self.config(opt), **changes)
        configs = dict(self.configs)
        configs[opt] = cfg
        return dataclasses.replace(self, configs=configs)


PERSONAS: dict[str, CompilerPersona] = {
    "gcc": CompilerPersona(
        name="gcc",
        isa="x86",
        configs={
            "O1": OptConfig(vectorize=False),
            "O2": OptConfig(vectorize=True, unroll=1),
            "O3": OptConfig(vectorize=True, unroll=1),
            "Ofast": OptConfig(vectorize=True, unroll=1, n_accumulators=1,
                               fast_math=True),
        },
        vector_width={"golden_cove": "zmm", "zen4": "ymm"},
    ),
    "clang": CompilerPersona(
        name="clang",
        isa="x86",
        configs={
            "O1": OptConfig(vectorize=False),
            "O2": OptConfig(vectorize=True, unroll=2),
            "O3": OptConfig(vectorize=True, unroll=4),
            "Ofast": OptConfig(vectorize=True, unroll=4, n_accumulators=4,
                               fast_math=True),
        },
        vector_width={"golden_cove": "ymm", "zen4": "ymm"},
    ),
    "icx": CompilerPersona(
        name="icx",
        isa="x86",
        configs={
            "O1": OptConfig(vectorize=False),
            "O2": OptConfig(vectorize=True, unroll=1),
            "O3": OptConfig(vectorize=True, unroll=2),
            "Ofast": OptConfig(vectorize=True, unroll=2, n_accumulators=4,
                               fast_math=True),
        },
        vector_width={"golden_cove": "zmm", "zen4": "ymm"},
    ),
    "gcc-arm": CompilerPersona(
        name="gcc-arm",
        isa="aarch64",
        configs={
            "O1": OptConfig(vectorize=False),
            "O2": OptConfig(vectorize=True, unroll=1),
            "O3": OptConfig(vectorize=True, unroll=1),
            "Ofast": OptConfig(vectorize=True, unroll=1, n_accumulators=2,
                               fast_math=True),
        },
        vector_style="sve",
    ),
    "armclang": CompilerPersona(
        name="armclang",
        isa="aarch64",
        configs={
            "O1": OptConfig(vectorize=False),
            "O2": OptConfig(vectorize=True, unroll=2),
            "O3": OptConfig(vectorize=True, unroll=4),
            "Ofast": OptConfig(vectorize=True, unroll=4, n_accumulators=4,
                               fast_math=True),
        },
        vector_style="neon",
        gs_move_chain=True,
    ),
}


def personas_for_isa(isa: str) -> list[CompilerPersona]:
    """Personas available on an ISA (3 on x86, 2 on AArch64 — matching
    the paper's toolchain matrix and its 416-test corpus)."""
    return [p for p in PERSONAS.values() if p.isa == isa]
