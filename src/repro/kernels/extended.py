"""Extended kernel suite beyond the paper's 13 validation kernels.

The in-core models are general: anything expressible as a streaming
loop body works through the same codegen → analyze → simulate pipeline.
This module adds the classic kernels an HPC practitioner reaches for
next — used by the examples and the extended regression tests, and a
natural place for downstream users to register their own kernels via
:func:`register_kernel`.
"""

from __future__ import annotations

from .ir import Bin, Carried, Expr, IndexValue, Load, Scalar, balanced_sum
from .suite import KernelSpec


def _horner(degree: int) -> Expr:
    """Horner evaluation of a degree-N polynomial of a streamed input —
    a pure multiply-add latency chain."""
    x = Load("a")
    acc: Expr = Scalar(f"c{degree}", 1.0)
    for k in range(degree - 1, -1, -1):
        acc = acc * x + Scalar(f"c{k}", 1.0)
    return acc


def _build() -> dict[str, KernelSpec]:
    kernels: list[KernelSpec] = []

    kernels.append(
        KernelSpec(
            name="daxpy",
            description="y[i] = y[i] + alpha * x[i] (BLAS-1 AXPY)",
            expr=Load("y") + Scalar("alpha", 2.0) * Load("x"),
            store="y",
        )
    )
    kernels.append(
        KernelSpec(
            name="scale",
            description="b[i] = s * a[i] (STREAM scale)",
            expr=Scalar("s", 3.0) * Load("a"),
            store="b",
        )
    )
    kernels.append(
        KernelSpec(
            name="dot",
            description="s += a[i] * b[i] (BLAS-1 DOT)",
            expr=Load("a") * Load("b"),
            store=None,
            reduction="+",
            needs_fast_math=True,
        )
    )
    kernels.append(
        KernelSpec(
            name="norm2",
            description="s += a[i] * a[i] (squared 2-norm)",
            expr=Load("a") * Load("a"),
            store=None,
            reduction="+",
            needs_fast_math=True,
        )
    )
    kernels.append(
        KernelSpec(
            name="horner4",
            description="b[i] = degree-4 Horner polynomial of a[i]",
            expr=_horner(4),
            store="b",
        )
    )
    kernels.append(
        KernelSpec(
            name="horner8",
            description="b[i] = degree-8 Horner polynomial of a[i]",
            expr=_horner(8),
            store="b",
        )
    )
    kernels.append(
        KernelSpec(
            name="prefix_prod",
            description="p[i] = p[i-1] * a[i] (carried multiply chain)",
            expr=Carried() * Load("a"),
            store="p",
            vectorizable=False,
        )
    )
    kernels.append(
        KernelSpec(
            name="rel_residual",
            description="s += (a[i] - b[i]) / b[i] (divide-heavy reduction)",
            expr=(Load("a") - Load("b")) / Load("b"),
            store=None,
            reduction="+",
            needs_fast_math=True,
        )
    )
    # long-range 1D stencil (radius 4, 9 points): stresses split loads
    kernels.append(
        KernelSpec(
            name="j1d9pt",
            description="Jacobi 1D 9-point (radius-4) stencil",
            expr=Scalar("w", 1.0 / 9.0)
            * balanced_sum([Load("a", off) for off in range(-4, 5)]),
            store="b",
        )
    )
    # variable-coefficient 2D stencil: two input arrays
    kernels.append(
        KernelSpec(
            name="j2d5pt_vc",
            description="variable-coefficient Jacobi 2D 5-point",
            expr=Load("c", 0, 0)
            * balanced_sum(
                [
                    Load("a", -1, 0),
                    Load("a", 1, 0),
                    Load("a", 0, -1),
                    Load("a", 0, 1),
                ]
            ),
            store="b",
        )
    )
    kernels.append(
        KernelSpec(
            name="wave2d",
            description="2nd-order wave propagation: u' = 2u - u_prev + c*laplacian(u)",
            expr=(Scalar("two", 2.0) * Load("u", 0, 0) - Load("uprev", 0, 0))
            + Scalar("c", 0.1)
            * balanced_sum(
                [
                    Load("u", -1, 0),
                    Load("u", 1, 0),
                    Load("u", 0, -1),
                    Load("u", 0, 1),
                ]
            ),
            store="unext",
        )
    )
    return {k.name: k for k in kernels}


EXTENDED_KERNELS: dict[str, KernelSpec] = _build()

#: combined registry (paper suite + extensions)
def all_kernels() -> dict[str, KernelSpec]:
    from .suite import KERNELS

    merged = dict(KERNELS)
    merged.update(EXTENDED_KERNELS)
    return merged


def register_kernel(spec: KernelSpec) -> None:
    """Register a user-defined kernel in the extended suite."""
    if spec.name in EXTENDED_KERNELS or spec.name in all_kernels():
        raise ValueError(f"kernel {spec.name!r} already registered")
    EXTENDED_KERNELS[spec.name] = spec


def get_extended_kernel(name: str) -> KernelSpec:
    merged = all_kernels()
    try:
        return merged[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; known: {sorted(merged)}"
        ) from None
