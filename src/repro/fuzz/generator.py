"""The seeded kernel fuzzer: deterministic corpus generation at scale.

The paper validates on 416 hand-enumerated corpus blocks; the fuzzer
turns the same code-generation machinery (:mod:`repro.kernels.codegen`
under the toolchain personas) into an unbounded corpus.  Every
:class:`FuzzedKernel` is a **pure function** of ``(seed, index)``: the
base-point draw (machine, kernel, persona, optimization level,
precision) and the :class:`~.mutations.MutationVector` both come from
SHA-256 seed streams (:mod:`.rng`), and the assembly-level rewrites
replay bit-identically from the same key.  Re-running a sweep with the
same seed therefore regenerates the *identical* corpus — on any
machine, at any ``--jobs``.

``fuzz_kernel`` exposes the pure regeneration path directly: given the
recorded coordinates and mutation vector of any corpus entry, it
rebuilds the same assembly, which is what the property tests assert
and what triage reproduction relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..kernels.codegen import generate_assembly
from ..kernels.corpus import MACHINES
from ..kernels.personas import OPT_LEVELS, PERSONAS, personas_for_isa
from ..kernels.suite import KERNELS
from .mutations import MutationVector, apply_mutations, draw_vector
from .rng import SeedStream

#: fuzzable ISAs (``"both"`` accepted by :func:`generate_fuzz_corpus`)
FUZZ_ISAS = ("x86", "aarch64")


@dataclass(frozen=True)
class FuzzedKernel:
    """One fuzzed corpus entry — plain data, cheap to pickle.

    ``assembly`` is fully determined by the other fields; equality of
    the coordinate tuple implies equality of the text (the regeneration
    property tests pin this).
    """

    seed: int
    index: int
    machine: str
    uarch: str
    isa: str
    kernel: str
    persona: str
    opt: str
    precision: str
    vector: MutationVector
    assembly: str

    @property
    def signature(self) -> str:
        """The mutation signature — the triage clustering key."""
        return self.vector.signature

    @property
    def label(self) -> str:
        """Stable unit label: coordinates + signature, no index, so a
        kernel keeps its label across different sweep sizes."""
        return (
            f"fuzz/{self.machine}/{self.kernel}/{self.persona}/{self.opt}/"
            f"{self.precision}/{self.signature}/i{self.index}"
        )


def fuzz_assembly(
    seed: int,
    index: int,
    kernel: str,
    persona: str,
    opt: str,
    uarch: str,
    precision: str,
    vector: MutationVector,
) -> str:
    """Regenerate one fuzzed block — pure in every argument.

    Persona-level mutations (unroll/accumulator overrides) derive a
    variant persona; assembly-level mutations rewrite the emitted text
    under a stream keyed by the full coordinate tuple.
    """
    base_persona = PERSONAS[persona]
    mutated = vector.mutated_persona(base_persona, opt)
    asm = generate_assembly(kernel, mutated, opt, uarch, precision=precision)
    stream = SeedStream(
        "fuzz-apply", seed, index, kernel, persona, opt, uarch, precision,
        vector.signature,
    )
    return apply_mutations(asm, base_persona.isa, vector, stream)


def fuzz_kernel(
    seed: int,
    index: int,
    *,
    machine: str,
    kernel: str,
    persona: str,
    opt: str,
    precision: str = "dp",
    vector: Optional[MutationVector] = None,
) -> FuzzedKernel:
    """Build one :class:`FuzzedKernel` from explicit coordinates."""
    uarch, isa = MACHINES[machine]
    if PERSONAS[persona].isa != isa:
        raise ValueError(
            f"persona {persona!r} targets {PERSONAS[persona].isa}, "
            f"machine {machine!r} is {isa}"
        )
    vector = vector if vector is not None else MutationVector()
    return FuzzedKernel(
        seed=seed,
        index=index,
        machine=machine,
        uarch=uarch,
        isa=isa,
        kernel=kernel,
        persona=persona,
        opt=opt,
        precision=precision,
        vector=vector,
        assembly=fuzz_assembly(
            seed, index, kernel, persona, opt, uarch, precision, vector
        ),
    )


def _machine_pool(isa: str) -> list[str]:
    if isa == "both":
        return sorted(MACHINES)
    if isa not in FUZZ_ISAS:
        raise ValueError(f"unknown ISA {isa!r}; known: {FUZZ_ISAS + ('both',)}")
    return sorted(m for m, (_, i) in MACHINES.items() if i == isa)


def draw_fuzz_kernel(
    seed: int,
    index: int,
    *,
    machines: Sequence[str],
    kernels: Sequence[str],
) -> FuzzedKernel:
    """Draw entry *index* of the seed's corpus — pure in ``(seed, index)``."""
    stream = SeedStream("fuzz-draw", seed, index)
    machine = stream.choice(machines)
    _, isa = MACHINES[machine]
    persona = stream.choice([p.name for p in personas_for_isa(isa)])
    kernel = stream.choice(kernels)
    opt = stream.choice(OPT_LEVELS)
    precision = stream.choice(("dp", "dp", "dp", "sp"))  # paper corpus is dp
    vector = draw_vector(stream)
    return fuzz_kernel(
        seed, index, machine=machine, kernel=kernel, persona=persona,
        opt=opt, precision=precision, vector=vector,
    )


def generate_fuzz_corpus(
    seed: int,
    count: int,
    *,
    isa: str = "both",
    machines: Optional[Iterable[str]] = None,
    kernels: Optional[Iterable[str]] = None,
) -> list[FuzzedKernel]:
    """Generate the first *count* entries of seed's fuzz corpus.

    The corpus is an indexed sequence, not a set: entry *i* depends
    only on ``(seed, i)`` and the machine/kernel pools, so growing
    ``count`` extends a corpus without changing its prefix — sweeps of
    different sizes share cache entries and triage labels.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    pool = sorted(machines) if machines else _machine_pool(isa)
    unknown = [m for m in pool if m not in MACHINES]
    if unknown:
        raise ValueError(f"unknown machine(s) {unknown}; known: {sorted(MACHINES)}")
    names = sorted(kernels) if kernels else sorted(KERNELS)
    return [
        draw_fuzz_kernel(seed, i, machines=pool, kernels=names)
        for i in range(count)
    ]
