"""Triage: turn a differential sweep into a gateable run-report.

The triage report is an ordinary run-report manifest
(``repro-run-report/1``, :mod:`repro.obs.report`), so the existing
``repro-report`` differ gates on it unchanged: ``divergent``,
``divergence_rate``, ``max_divergence``, ``degraded_units`` and
``failed_units`` are lower-is-better stats, per-signature clusters are
nested stats, and engine unit failures ride in ``unit_failures``.
Committing a triage manifest as a baseline makes *new* divergences —
a modeling change that breaks backend agreement on any mutation class —
a CI failure.

Determinism is load-bearing: the manifest deliberately excludes wall
time, creation timestamps, and job counts, so the same ``(seed, count,
backends, tolerance)`` sweep produces a **hash-identical** manifest at
any ``--jobs``, with or without a warm cache, and under healing
injected faults.  :func:`manifest_digest` is the canonical hash.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Optional

from ..engine.cachekey import ENGINE_VERSION
from ..obs.report import SCHEMA, collect_model_digests, load_manifest, write_manifest
from .harness import DifferentialResult

__all__ = [
    "build_triage_manifest",
    "manifest_digest",
    "render_triage",
    "load_manifest",
    "write_manifest",
]

#: divergences listed in full detail; the rest are counted in clusters
DETAIL_LIMIT = 50


def _cluster_stats(result: DifferentialResult) -> dict[str, dict[str, Any]]:
    """Per-mutation-signature divergence clusters (nested stats)."""
    clusters: dict[str, dict[str, Any]] = {}
    for d in result.divergences:
        c = clusters.setdefault(
            d.signature, {"divergent": 0, "max_divergence": 0.0}
        )
        c["divergent"] += 1
        c["max_divergence"] = round(max(c["max_divergence"], d.spread), 9)
    return {sig: clusters[sig] for sig in sorted(clusters)}


def build_triage_manifest(
    result: DifferentialResult,
    *,
    isa: str = "both",
    detail_limit: int = DETAIL_LIMIT,
) -> dict[str, Any]:
    """The deterministic triage manifest for one differential sweep.

    ``benchmarks.fuzz.stats`` carries the gateable numbers (all
    direction-classified by the differ); ``benchmarks.fuzz.divergences``
    carries the ranked detail list (top ``detail_limit``); failed units
    ride in the standard ``unit_failures`` section keyed by label.
    """
    failures = sorted(
        (f.to_json() for f in (result.engine.failures if result.engine else [])),
        key=lambda f: f.get("label", ""),
    )
    max_div = result.divergences[0].spread if result.divergences else 0.0
    stats: dict[str, Any] = {
        "kernels": len(result.corpus),
        "checked": result.checked,
        "agreements": result.agreements,
        "divergent": len(result.divergences),
        "divergence_rate": round(result.divergence_rate, 9),
        "max_divergence": round(max_div, 9),
        "degraded_units": len(result.degraded),
        "failed_units": len(failures),
    }
    clusters = _cluster_stats(result)
    if clusters:
        stats["clusters"] = clusters
    manifest: dict[str, Any] = {
        "schema": SCHEMA,
        "command": (
            f"repro-fuzz --seed {result.seed} --count {len(result.corpus)}"
        ),
        "engine_version": ENGINE_VERSION,
        "config": {
            "seed": result.seed,
            "count": len(result.corpus),
            "isa": isa,
            "backends": list(result.backends),
            "tolerance": result.tolerance,
        },
        "machine_models": collect_model_digests(),
        "benchmarks": {
            "fuzz": {
                "status": "ok",
                "stats": stats,
                "divergences": [
                    d.to_json() for d in result.divergences[:detail_limit]
                ],
                "degraded": list(result.degraded),
            }
        },
        "failures": [],
    }
    if failures:
        manifest["unit_failures"] = failures
    return manifest


def manifest_digest(manifest: dict[str, Any]) -> str:
    """SHA-256 of the canonical JSON form — the reproducibility hash."""
    blob = json.dumps(manifest, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def render_triage(manifest: dict[str, Any], *, limit: int = 10) -> str:
    """Human-readable triage summary for the CLI."""
    bench = manifest["benchmarks"]["fuzz"]
    stats = bench["stats"]
    cfg = manifest["config"]
    lines = [
        f"fuzz sweep: seed={cfg['seed']} count={cfg['count']} "
        f"backends={','.join(cfg['backends'])} tolerance={cfg['tolerance']}",
        f"  checked {stats['checked']}/{stats['kernels']} kernels: "
        f"{stats['agreements']} agree, {stats['divergent']} diverge "
        f"(rate {stats['divergence_rate']:.3f}), "
        f"{stats['degraded_units']} degraded, "
        f"{stats['failed_units']} failed",
    ]
    clusters = stats.get("clusters", {})
    if clusters:
        lines.append("  divergence clusters by mutation signature:")
        ranked = sorted(
            clusters.items(),
            key=lambda kv: (-kv[1]["divergent"], kv[0]),
        )
        for sig, c in ranked[:limit]:
            lines.append(
                f"    {sig:<40} {c['divergent']:>5} divergent, "
                f"max {c['max_divergence']:.3f}"
            )
    divs = bench.get("divergences", [])
    if divs:
        lines.append(f"  top divergences (of {stats['divergent']}):")
        for d in divs[:limit]:
            vals = ", ".join(
                f"{k}={v:.3f}" for k, v in sorted(d["values"].items())
            )
            lines.append(f"    {d['spread']:.3f}  {d['label']}  [{vals}]")
    lines.append(f"  manifest digest: {manifest_digest(manifest)}")
    return "\n".join(lines)
