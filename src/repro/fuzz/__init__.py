"""``repro.fuzz`` — seeded kernel fuzzing + differential backend validation.

The paper's models are validated on a 416-variant corpus; this package
scales that methodology to tens of thousands of *generated* kernels and
lets the backends check each other (ROADMAP item 3):

* :mod:`.rng` — SHA-256 seed streams (platform-independent draws),
* :mod:`.mutations` — the composable mutation catalog
  (:class:`MutationVector`),
* :mod:`.generator` — the seeded corpus generator
  (:func:`generate_fuzz_corpus`; every kernel a pure function of
  ``(seed, index)``),
* :mod:`.harness` — the differential sweep over the model/mca/sim
  backends via the engine (:func:`run_differential`),
* :mod:`.triage` — deterministic, gateable run-report manifests
  (:func:`build_triage_manifest`).

Entry point: ``repro-fuzz --seed S --count N`` (see ``docs/fuzzing.md``).
"""

from .generator import (
    FUZZ_ISAS,
    FuzzedKernel,
    draw_fuzz_kernel,
    fuzz_assembly,
    fuzz_kernel,
    generate_fuzz_corpus,
)
from .harness import (
    DEFAULT_ITERATIONS,
    DEFAULT_TOLERANCE,
    DifferentialResult,
    Divergence,
    fuzz_units,
    relative_spread,
    run_differential,
)
from .mutations import UNROLL_CHOICES, MutationVector, apply_mutations, draw_vector
from .rng import SeedStream
from .triage import build_triage_manifest, manifest_digest, render_triage

__all__ = [
    "DEFAULT_ITERATIONS",
    "DEFAULT_TOLERANCE",
    "FUZZ_ISAS",
    "UNROLL_CHOICES",
    "DifferentialResult",
    "Divergence",
    "FuzzedKernel",
    "MutationVector",
    "SeedStream",
    "apply_mutations",
    "build_triage_manifest",
    "draw_fuzz_kernel",
    "draw_vector",
    "fuzz_assembly",
    "fuzz_kernel",
    "fuzz_units",
    "generate_fuzz_corpus",
    "manifest_digest",
    "relative_spread",
    "render_triage",
    "run_differential",
]
