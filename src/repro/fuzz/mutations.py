"""The mutation catalog: composable, deterministic kernel mutations.

A :class:`MutationVector` describes which mutations apply to one fuzzed
kernel.  Mutations come in two layers:

**Persona-level** (applied *before* emission, by deriving a variant
:class:`~repro.kernels.personas.CompilerPersona`):

``unroll``
    Force the persona's unroll factor at the chosen optimization level
    (1/2/4/8) — the register-allocation and addressing consequences
    ripple through the whole emitted block.
``accumulators``
    Force the reduction accumulator count (1–4); the emitters clamp it
    to the effective unroll, exactly as for the real personas.

**Assembly-level** (applied *after* emission, as deterministic text
rewrites of the loop body):

``shuffle``
    Fisher–Yates reorder of the body instructions (loop control stays
    in place).  Models must agree on any dependency structure, not just
    compiler-scheduled ones.
``pressure``
    Inject N register-to-register moves between existing vector
    registers — extra live ranges and rename traffic, the
    register-pressure stressor.
``unfold_memory``
    Addressing-mode rewrite: on x86, split folded memory operands of
    arithmetic instructions into an explicit load + register operand
    (what ``-mno-fold`` codegen would emit); on AArch64 NEON, rewrite
    eligible ``ldr``/``str`` to their unscaled-offset ``ldur``/``stur``
    forms.  SVE addressing has a single indexed form and is left alone.
``zero_idioms``
    Inject K same-register zeroing idioms (``vxorpd`` on x86, ``eor``
    on AArch64) — dependency-breaking on x86 renamers, plain ALU work
    on Arm; a known divergence hot spot between static models.

Every rewrite is driven by a :class:`~repro.fuzz.rng.SeedStream`, so a
mutated block is a pure function of ``(assembly, isa, vector, stream
key)`` and regenerates bit-identically.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from .rng import SeedStream

#: legal unroll-factor overrides (1 = force no unrolling)
UNROLL_CHOICES = (1, 2, 4, 8)

#: loop-control mnemonics: the contiguous tail of a block that
#: mutations must never reorder or split (backward branch, trip-count
#: compare/decrement, pointer/index bumps, SVE predicate maintenance)
_CONTROL_MNEMONICS = {
    # x86
    "addq", "cmpq", "jb",
    # aarch64 NEON
    "add", "subs", "b.ne",
    # aarch64 SVE
    "incd", "incw", "whilelo", "b.any",
}

#: x86 arithmetic with a foldable memory operand: AT&T puts the memory
#: operand first.  ``vmov*`` loads/stores are excluded — they *are* the
#: unfolded form.
_X86_FOLDED_RE = re.compile(
    r"^(\s*)(v(?!mov)\w+(pd|ps|sd|ss))\s+"
    r"(-?\d*\(%[a-z0-9]+(?:,%[a-z0-9]+,\d)?\)),\s*(.+)$"
)

_A64_LDR_RE = re.compile(r"^(\s*)(ldr|str)\s+(q\d+|d\d+|s\d+),\s*\[(\w+), #(\d+)\]$")


@dataclass(frozen=True)
class MutationVector:
    """Which mutations apply to one fuzzed kernel (all composable).

    ``None``/``0``/``False`` fields are identity; the all-identity
    vector reproduces the persona's own code generation exactly.
    """

    unroll: Optional[int] = None
    accumulators: Optional[int] = None
    shuffle: bool = False
    pressure: int = 0
    unfold_memory: bool = False
    zero_idioms: int = 0

    def __post_init__(self):
        if self.unroll is not None and self.unroll not in UNROLL_CHOICES:
            raise ValueError(
                f"unroll override must be one of {UNROLL_CHOICES}, "
                f"got {self.unroll}"
            )
        if self.accumulators is not None and not 1 <= self.accumulators <= 4:
            raise ValueError("accumulators override must be in [1, 4]")
        if self.pressure < 0 or self.zero_idioms < 0:
            raise ValueError("pressure/zero_idioms must be >= 0")

    @property
    def signature(self) -> str:
        """Stable string form — the triage report's clustering key."""
        parts = []
        if self.unroll is not None:
            parts.append(f"unroll={self.unroll}")
        if self.accumulators is not None:
            parts.append(f"acc={self.accumulators}")
        if self.shuffle:
            parts.append("shuffle")
        if self.pressure:
            parts.append(f"press={self.pressure}")
        if self.unfold_memory:
            parts.append("addr")
        if self.zero_idioms:
            parts.append(f"zero={self.zero_idioms}")
        return "+".join(parts) or "identity"

    @classmethod
    def from_signature(cls, signature: str) -> "MutationVector":
        """Parse a :attr:`signature` back into a vector (triage round-trip)."""
        if signature == "identity":
            return cls()
        kwargs: dict = {}
        for part in signature.split("+"):
            if part == "shuffle":
                kwargs["shuffle"] = True
            elif part == "addr":
                kwargs["unfold_memory"] = True
            elif part.startswith("unroll="):
                kwargs["unroll"] = int(part[7:])
            elif part.startswith("acc="):
                kwargs["accumulators"] = int(part[4:])
            elif part.startswith("press="):
                kwargs["pressure"] = int(part[6:])
            elif part.startswith("zero="):
                kwargs["zero_idioms"] = int(part[5:])
            else:
                raise ValueError(f"unknown mutation signature part {part!r}")
        return cls(**kwargs)

    def mutated_persona(self, persona, opt: str):
        """The persona variant carrying this vector's pre-emission knobs."""
        changes: dict = {}
        if self.unroll is not None:
            changes["unroll"] = self.unroll
        if self.accumulators is not None:
            changes["n_accumulators"] = self.accumulators
        return persona.with_config(opt, **changes) if changes else persona


def draw_vector(stream: SeedStream) -> MutationVector:
    """Draw one mutation vector; consumes a fixed number of draws.

    Each mutation switches on independently, so identity and
    heavily-composed vectors both occur.  The draw *count* is constant
    regardless of which branches hit, keeping downstream draws aligned
    however the vector comes out.
    """
    unroll = stream.choice(UNROLL_CHOICES)
    use_unroll = stream.chance(0.45)
    acc = stream.randint(1, 4)
    use_acc = stream.chance(0.25)
    shuffle = stream.chance(0.5)
    pressure = stream.randint(1, 4)
    use_pressure = stream.chance(0.4)
    unfold = stream.chance(0.4)
    zeros = stream.randint(1, 2)
    use_zeros = stream.chance(0.35)
    return MutationVector(
        unroll=unroll if use_unroll else None,
        accumulators=acc if use_acc else None,
        shuffle=shuffle,
        pressure=pressure if use_pressure else 0,
        unfold_memory=unfold,
        zero_idioms=zeros if use_zeros else 0,
    )


# ---------------------------------------------------------------------------
# Assembly-level rewrites
# ---------------------------------------------------------------------------

def split_block(asm: str) -> tuple[str, list[str], list[str]]:
    """Split an emitted block into (label line, body, control tail).

    The tail is the maximal run of trailing loop-control instructions
    (:data:`_CONTROL_MNEMONICS`); mutations only ever touch the body.
    """
    lines = [ln for ln in asm.splitlines() if ln.strip()]
    if not lines or not lines[0].strip().endswith(":"):
        raise ValueError("expected a label-led loop block")
    label, rest = lines[0], lines[1:]
    tail_start = len(rest)
    while tail_start > 0:
        mnemonic = rest[tail_start - 1].split()[0]
        if mnemonic not in _CONTROL_MNEMONICS:
            break
        tail_start -= 1
    return label, rest[:tail_start], rest[tail_start:]


def _join(label: str, body: list[str], tail: list[str]) -> str:
    return "\n".join([label, *body, *tail]) + "\n"


def _x86_width_class(body: list[str]) -> str:
    """Widest x86 vector register class used in the body."""
    text = "\n".join(body)
    for cls in ("zmm", "ymm"):
        if f"%{cls}" in text:
            return cls
    return "xmm"


def _a64_style(body: list[str]) -> str:
    """``"sve"`` | ``"neon"`` | ``"scalar"`` from the registers in use."""
    text = "\n".join(body)
    if re.search(r"\bz\d+\.", text):
        return "sve"
    if re.search(r"\bv\d+\.", text) or re.search(r"\bq\d+\b", text):
        return "neon"
    return "scalar"


def _pressure_line(isa: str, body: list[str], stream: SeedStream) -> str:
    """One injected register-to-register move (a fresh live range)."""
    src, dst = stream.randint(0, 15), stream.randint(0, 15)
    if isa == "x86":
        cls = _x86_width_class(body)
        return f"    vmovapd %{cls}{src}, %{cls}{dst}"
    style = _a64_style(body)
    if style == "sve":
        return f"    mov z{dst}.d, z{src}.d"
    if style == "neon":
        return f"    mov v{dst}.16b, v{src}.16b"
    return f"    fmov d{dst}, d{src}"


def _zero_idiom_line(isa: str, body: list[str], stream: SeedStream) -> str:
    """One injected same-register zeroing idiom."""
    r = stream.randint(0, 15)
    if isa == "x86":
        cls = _x86_width_class(body)
        return f"    vxorpd %{cls}{r}, %{cls}{r}, %{cls}{r}"
    style = _a64_style(body)
    if style == "sve":
        return f"    eor z{r}.d, z{r}.d, z{r}.d"
    return f"    eor v{r}.16b, v{r}.16b, v{r}.16b"


def _unfold_x86_line(line: str, stream: SeedStream) -> list[str]:
    """Split a folded memory operand into load + register arithmetic."""
    m = _X86_FOLDED_RE.match(line)
    if m is None or not stream.chance(0.5):
        return [line]
    indent, mnemonic, sfx, mem, rest = m.groups()
    dest = rest.split(",")[-1].strip().lstrip("%")
    cls = "zmm" if "zmm" in dest else ("ymm" if "ymm" in dest else "xmm")
    scratch = f"{cls}{stream.randint(4, 7)}"
    mov = {"pd": "vmovupd", "ps": "vmovups", "sd": "vmovsd", "ss": "vmovss"}[sfx]
    return [
        f"{indent}{mov} {mem}, %{scratch}",
        f"{indent}{mnemonic} %{scratch}, {rest}",
    ]


def _unscale_a64_line(line: str, stream: SeedStream) -> list[str]:
    """Rewrite an eligible ``ldr``/``str`` to ``ldur``/``stur``."""
    m = _A64_LDR_RE.match(line)
    if m is None or not stream.chance(0.5):
        return [line]
    indent, mnemonic, reg, base, disp = m.groups()
    if not 0 < int(disp) <= 255:  # unscaled offsets are 9-bit signed
        return [line]
    un = "ldur" if mnemonic == "ldr" else "stur"
    return [f"{indent}{un} {reg}, [{base}, #{disp}]"]


def apply_mutations(
    asm: str, isa: str, vector: MutationVector, stream: SeedStream
) -> str:
    """Apply the vector's assembly-level mutations to one block.

    Rewrites run in a fixed order (shuffle → addressing → pressure →
    zero idioms) and draw from *stream* in a fixed pattern, so the
    output is a pure function of the inputs.
    """
    if not (
        vector.shuffle
        or vector.pressure
        or vector.unfold_memory
        or vector.zero_idioms
    ):
        return asm
    label, body, tail = split_block(asm)
    if vector.shuffle:
        stream.shuffle(body)
    if vector.unfold_memory:
        rewrite = _unfold_x86_line if isa == "x86" else _unscale_a64_line
        body = [out for line in body for out in rewrite(line, stream)]
    for _ in range(vector.pressure):
        pos = stream.randint(0, len(body))
        body.insert(pos, _pressure_line(isa, body, stream))
    for _ in range(vector.zero_idioms):
        pos = stream.randint(0, len(body))
        body.insert(pos, _zero_idiom_line(isa, body, stream))
    return _join(label, body, tail)
