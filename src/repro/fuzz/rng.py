"""Deterministic, platform-independent random draws for the fuzzer.

Every fuzzed kernel must be a *pure function* of ``(seed, persona,
mutation-vector)`` — across interpreter versions, operating systems,
and worker counts.  ``random.Random`` makes no cross-version stream
guarantees for all of its methods, so the fuzzer draws from SHA-256
instead, the same primitive the fault-injection harness uses
(:mod:`repro.faults`): a :class:`SeedStream` is keyed by an arbitrary
tuple of parts and yields a reproducible sequence of integers in
``[0, 2**64)``, from which the usual ``randint``/``choice``/``shuffle``
conveniences are derived.

Two streams with the same key parts produce identical sequences;
distinct key parts produce statistically independent ones.
"""

from __future__ import annotations

import hashlib
from typing import MutableSequence, Sequence, TypeVar

T = TypeVar("T")


class SeedStream:
    """A reproducible random stream keyed by ``parts``.

    Draw *n* is ``SHA-256(key | n)`` truncated to 64 bits — a pure
    function of the key and the draw index, so the stream replays
    identically anywhere.
    """

    def __init__(self, *parts: object):
        self._key = "|".join(str(p) for p in parts)
        self._n = 0

    def u64(self) -> int:
        """The next raw draw in ``[0, 2**64)``."""
        blob = f"{self._key}|{self._n}".encode()
        self._n += 1
        return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")

    def random(self) -> float:
        """The next draw as a float in ``[0, 1)``."""
        return self.u64() / 2**64

    def randint(self, lo: int, hi: int) -> int:
        """A draw in ``[lo, hi]`` (both inclusive).

        The modulo bias is ~2**-50 for the small ranges the fuzzer
        uses — irrelevant next to reproducibility.
        """
        if hi < lo:
            raise ValueError(f"empty range [{lo}, {hi}]")
        return lo + self.u64() % (hi - lo + 1)

    def chance(self, p: float) -> bool:
        """True with probability *p* (consumes exactly one draw)."""
        return self.random() < p

    def choice(self, seq: Sequence[T]) -> T:
        """One element of a non-empty sequence."""
        if not seq:
            raise ValueError("choice from an empty sequence")
        return seq[self.u64() % len(seq)]

    def shuffle(self, items: MutableSequence[T]) -> None:
        """In-place Fisher-Yates shuffle driven by the stream."""
        for i in range(len(items) - 1, 0, -1):
            j = self.u64() % (i + 1)
            items[i], items[j] = items[j], items[i]
