"""The differential harness: fan fuzzed kernels out over the backends.

Each fuzzed kernel becomes one ``"corpus"`` work unit, so a sweep
inherits the whole engine contract for free: one lowering per block
shared by every backend (:mod:`repro.lowering` memoization), the
content-addressed cache, ``--jobs`` parallelism, bounded retries, and
the ``collect``/``quarantine`` error policies — a fuzzer-provoked
backend crash isolates to its unit instead of killing the sweep.

The differential signal is *relative spread*: for each kernel, the
model/mca/sim cycles-per-iteration predictions are compared and the
kernel is **divergent** when

    spread = (max - min) / max(|max|, epsilon) > tolerance

i.e. the backends disagree by more than ``tolerance`` relative to the
largest prediction.  Degraded units (a backend errored under
``collect``) and failed units are carried through as their own
categories — they are triage signal, not noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..engine import CorpusEngine, WorkUnit, resolve_engine
from ..engine.evaluators import CORPUS_BACKENDS, CORPUS_FIELDS
from .generator import FuzzedKernel

#: spreads below this floor are numerical noise, never divergences
EPSILON = 1e-12

#: default relative-tolerance threshold for flagging a divergence;
#: static models legitimately disagree with the simulator by a few
#: percent, so the default only flags structural disagreement
DEFAULT_TOLERANCE = 0.25

#: default per-kernel simulator iteration budget (sweeps are wide, so
#: each unit stays cheap; the corpus evaluator derives warmup from it)
DEFAULT_ITERATIONS = 60


@dataclass(frozen=True)
class Divergence:
    """One kernel on which the backends disagree beyond tolerance."""

    label: str
    signature: str
    machine: str
    kernel: str
    spread: float
    values: dict[str, float]  #: backend name -> cycles/iteration

    def to_json(self) -> dict:
        return {
            "label": self.label,
            "signature": self.signature,
            "machine": self.machine,
            "kernel": self.kernel,
            "spread": round(self.spread, 9),
            "values": {k: round(v, 9) for k, v in sorted(self.values.items())},
        }


@dataclass
class DifferentialResult:
    """Everything a fuzz sweep produced, pre-triage."""

    seed: int
    tolerance: float
    backends: tuple[str, ...]
    corpus: list[FuzzedKernel]
    divergences: list[Divergence]
    agreements: int
    degraded: list[str] = field(default_factory=list)  #: unit labels
    engine: Optional[CorpusEngine] = None

    @property
    def checked(self) -> int:
        """Kernels with a full backend fan-out to compare."""
        return self.agreements + len(self.divergences)

    @property
    def divergence_rate(self) -> float:
        return len(self.divergences) / self.checked if self.checked else 0.0


def fuzz_units(
    corpus: Sequence[FuzzedKernel],
    *,
    backends: Sequence[str] = CORPUS_BACKENDS,
    iterations: int = DEFAULT_ITERATIONS,
) -> list[WorkUnit]:
    """One ``"corpus"`` work unit per fuzzed kernel."""
    names = [b for b in CORPUS_BACKENDS if b in backends]
    unknown = sorted(set(backends) - set(CORPUS_BACKENDS))
    if unknown:
        raise ValueError(
            f"unknown backend(s) {unknown}; known: {list(CORPUS_BACKENDS)}"
        )
    extra = {} if len(names) == len(CORPUS_BACKENDS) else {"backends": names}
    return [
        WorkUnit.make(
            "corpus",
            label=k.label,
            uarch=k.uarch,
            assembly=k.assembly,
            iterations=iterations,
            **extra,
        )
        for k in corpus
    ]


def relative_spread(values: Sequence[float]) -> float:
    """``(max - min) / max(|max|, EPSILON)`` over backend predictions."""
    hi, lo = max(values), min(values)
    return (hi - lo) / max(abs(hi), EPSILON)


def run_differential(
    corpus: Sequence[FuzzedKernel],
    *,
    seed: int,
    backends: Sequence[str] = CORPUS_BACKENDS,
    tolerance: float = DEFAULT_TOLERANCE,
    iterations: int = DEFAULT_ITERATIONS,
    engine: Optional[CorpusEngine] = None,
    jobs: Optional[int] = None,
    cache=None,
) -> DifferentialResult:
    """Run the backend fan-out over a fuzzed corpus and compare.

    Requires at least two backends (one prediction cannot diverge).
    The engine resolves like every other sweep (explicit > jobs/cache >
    ambient); under ``collect``/``quarantine`` policies, failed units
    surface on ``engine.failures`` and degraded units (some backends
    errored) are listed by label on the result.
    """
    names = tuple(b for b in CORPUS_BACKENDS if b in backends)
    if len(names) < 2:
        raise ValueError(
            f"differential testing needs >= 2 backends, got {list(names)}"
        )
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    eng = resolve_engine(engine, jobs, cache)
    corpus = list(corpus)
    units = fuzz_units(corpus, backends=names, iterations=iterations)
    results = eng.run(units)

    divergences: list[Divergence] = []
    agreements = 0
    degraded: list[str] = []
    for kern, res in zip(corpus, results):
        if res is None:  # failed unit: on engine.failures, not ours
            continue
        if res.get("degraded"):
            degraded.append(kern.label)
            continue
        values = {b: float(res[CORPUS_FIELDS[b]]) for b in names}
        # round once, here: the stored value, the ranking key, and the
        # cluster maxima must all agree or tie-breaks become unstable
        spread = round(relative_spread(list(values.values())), 9)
        if spread > tolerance:
            divergences.append(
                Divergence(
                    label=kern.label,
                    signature=kern.signature,
                    machine=kern.machine,
                    kernel=kern.kernel,
                    spread=spread,
                    values=values,
                )
            )
        else:
            agreements += 1
    # rank: biggest disagreement first; label breaks ties determinately
    divergences.sort(key=lambda d: (-d.spread, d.label))
    degraded.sort()
    return DifferentialResult(
        seed=seed,
        tolerance=tolerance,
        backends=names,
        corpus=corpus,
        divergences=divergences,
        agreements=agreements,
        degraded=degraded,
        engine=eng,
    )
