"""Machine models for the three microarchitectures under study.

A :class:`~repro.machine.model.MachineModel` bundles

* the out-of-order **port set** of the core,
* an **instruction table** mapping (mnemonic, operand signature) to µops
  with candidate ports, latency, and optional throughput caps,
* **frontend/backend parameters** (dispatch width, ROB and scheduler
  sizes) used by the cycle-level simulator, and
* **memory-path parameters** (load/store ports, L1 latency).

Models provided:

========================  =====================  ==========
name                      core                   ISA
========================  =====================  ==========
``neoverse_v2``           Nvidia Grace (GCS)     aarch64
``golden_cove``           Intel SPR (Xeon 8470)  x86
``zen4``                  AMD Genoa (EPYC 9684X) x86
========================  =====================  ==========
"""

from .model import (
    MachineModel,
    InstrEntry,
    Uop,
    ResolvedInstruction,
    UnknownInstructionError,
)
from .registry import (
    available_models,
    coerce_model,
    get_machine_model,
    machine_for_chip,
)
from .specs import CHIP_SPECS, ChipSpec, get_chip_spec
from .io import load_model, save_model, model_to_dict, model_from_dict
from .whatif import widen_neoverse_v2, elements_per_vector

__all__ = [
    "MachineModel",
    "InstrEntry",
    "Uop",
    "ResolvedInstruction",
    "UnknownInstructionError",
    "get_machine_model",
    "available_models",
    "coerce_model",
    "machine_for_chip",
    "CHIP_SPECS",
    "ChipSpec",
    "get_chip_spec",
    "load_model",
    "save_model",
    "model_to_dict",
    "model_from_dict",
    "widen_neoverse_v2",
    "elements_per_vector",
]
