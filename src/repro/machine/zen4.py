"""Zen 4 machine model (AMD Genoa, EPYC 9684X).

Port layout, 13 ports — Table II of the paper:

=========  ==================================================
port       functional units
=========  ==================================================
alu0-alu3  4 × int ALU (alu1 carries the int multiplier)
agu0,agu1  load AGUs (2 × 256 bit/cy)
agu2       store AGU + store data (1 × 256 bit/cy)
fp0,fp1    FP MUL/FMA pipes (256 bit)
fp2,fp3    FP ADD pipes (256 bit)
br0,br1    branch units
=========  ==================================================

Zen 4 supports AVX-512 but executes 512-bit operations as **2 × 256-bit
µops** on the same pipes (the paper: "their execution is split into
2×256 bit packets"), so 512-bit vectors gain no per-cycle element
throughput: vector ADD/MUL/FMA peak at 8 DP elements/cy.  Latencies:
ADD/MUL 3, FMA 4, divide 13 at 0.8 DP elements/cy (ymm), scalar divide
0.2/cy; gather is slow at 1/8 cache line per cycle, latency 13.
"""

from __future__ import annotations

from .model import MachineModel
from .x86_common import X86Params, build_x86_entries

PARAMS = X86Params(
    alu="alu0|alu1|alu2|alu3",
    shift="alu0|alu1|alu2|alu3",
    branch="br0|br1",
    lea="alu0|alu1|alu2|alu3",
    imul="alu1",
    imul_lat=3.0,
    fp_add={"x": "fp2|fp3", "y": "fp2|fp3", "z": "fp2|fp3"},
    fp_mul={"x": "fp0|fp1", "y": "fp0|fp1", "z": "fp0|fp1"},
    fp_fma={"x": "fp0|fp1", "y": "fp0|fp1", "z": "fp0|fp1"},
    fp_add_lat=3.0,
    fp_mul_lat=3.0,
    fp_fma_lat=4.0,
    fp_add_lat_scalar=3.0,
    fp_mul_lat_scalar=3.0,
    fp_fma_lat_scalar=4.0,
    fp_div_port="fp1",
    div_cycles={"s": 5.0, "x": 4.0, "y": 5.0, "z": 10.0},
    div_lat={"s": 13.0, "x": 13.0, "y": 13.0, "z": 13.0},
    sqrt_cycles={"s": 6.0, "x": 5.0, "y": 7.0, "z": 14.0},
    sqrt_lat={"s": 15.0, "x": 15.0, "y": 15.0, "z": 15.0},
    fp_bool={"x": "fp0|fp1|fp2|fp3", "y": "fp0|fp1|fp2|fp3", "z": "fp0|fp1|fp2|fp3"},
    shuffle={"x": "fp1|fp2", "y": "fp1|fp2", "z": "fp1|fp2"},
    shuffle_lat=1.0,
    cross_lane={"y": "fp1|fp2", "z": "fp1|fp2"},
    cross_lane_lat=4.0,
    vec_int={"x": "fp0|fp1|fp2|fp3", "y": "fp0|fp1|fp2|fp3", "z": "fp0|fp1|fp2|fp3"},
    vec_int_lat=1.0,
    transfer="fp1",
    transfer_lat=3.0,
    cvt={"x": "fp2|fp3", "y": "fp2|fp3", "z": "fp2|fp3"},
    cvt_lat=4.0,
    fp_cmp_lat=3.0,
    gather={"x": (4.0, 13.0), "y": (4.0, 13.0), "z": (8.0, 15.0)},
    gather_extra_ports="fp1|fp2",
    mask_ports="fp0|fp1|fp2|fp3",
    mask_lat=1.0,
    # 512-bit ops are double-pumped into two 256-bit µops
    uops_per_op={"x": 1, "y": 1, "z": 2},
    has_avx512=True,
)

ZEN4 = MachineModel(
    name="zen4",
    isa="x86",
    ports=(
        "alu0", "alu1", "alu2", "alu3",
        "agu0", "agu1", "agu2",
        "fp0", "fp1", "fp2", "fp3",
        "br0", "br1",
    ),
    entries=build_x86_entries(PARAMS),
    load_ports=("agu0", "agu1"),
    store_agu_ports=("agu2",),
    store_data_ports=(),
    load_latency_gpr=4.0,
    load_latency_vec=7.0,
    load_width_bytes=32,
    store_width_bytes=32,
    dispatch_width=6,
    retire_width=8,
    rob_size=320,
    scheduler_size=128,
    load_buffer=88,
    store_buffer=64,
    move_elimination=True,
    zero_idioms=True,
    simd_width_bytes=32,
    int_alu_ports=("alu0", "alu1", "alu2", "alu3"),
    fp_ports=("fp0", "fp1", "fp2", "fp3"),
    branch_ports=("br0", "br1"),
    description=(
        "AMD Zen 4 core as in Genoa (EPYC 9684X): 13 ports, 4 FP pipes "
        "of 256 bit (AVX-512 double-pumped), 320-entry ROB, 6-wide "
        "dispatch."
    ),
)
