"""Model registry: look up machine models by name or chip alias."""

from __future__ import annotations

from .model import MachineModel

_ALIASES = {
    "neoverse_v2": "neoverse_v2",
    "neoverse-v2": "neoverse_v2",
    "v2": "neoverse_v2",
    "grace": "neoverse_v2",
    "gcs": "neoverse_v2",
    "golden_cove": "golden_cove",
    "golden-cove": "golden_cove",
    "glc": "golden_cove",
    "spr": "golden_cove",
    "sapphire_rapids": "golden_cove",
    "sapphirerapids": "golden_cove",
    "zen4": "zen4",
    "zen-4": "zen4",
    "genoa": "zen4",
}


def available_models() -> list[str]:
    """Canonical model names."""
    return ["neoverse_v2", "golden_cove", "zen4"]


def get_machine_model(name: str) -> MachineModel:
    """Return the machine model for a microarchitecture or chip alias.

    Accepts microarchitecture names (``zen4``, ``golden_cove``,
    ``neoverse_v2``) and marketing aliases (``genoa``, ``spr``,
    ``grace``/``gcs``).
    """
    key = _ALIASES.get(name.strip().lower().replace(" ", "_"))
    if key is None:
        raise ValueError(
            f"unknown machine model {name!r}; known: {sorted(set(_ALIASES))}"
        )
    if key == "neoverse_v2":
        from .neoverse_v2 import NEOVERSE_V2

        return NEOVERSE_V2
    if key == "golden_cove":
        from .golden_cove import GOLDEN_COVE

        return GOLDEN_COVE
    from .zen4 import ZEN4

    return ZEN4


def machine_for_chip(chip: str) -> MachineModel:
    """Alias of :func:`get_machine_model` for chip names (``gcs`` …)."""
    return get_machine_model(chip)


def coerce_model(arch: "str | MachineModel") -> MachineModel:
    """Accept a model instance, or look one up by name/chip alias.

    The single home of the ``arch if isinstance(arch, MachineModel)
    else get_machine_model(arch)`` idiom every public entry point
    needs.
    """
    if isinstance(arch, MachineModel):
        return arch
    return get_machine_model(arch)
