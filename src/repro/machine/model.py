"""The machine-model core: instruction tables and µop resolution.

The model answers one question for the analyzer and the simulator alike:
*given a parsed instruction, which µops does it decompose into, on which
ports can each µop execute, what is the result latency, and does it
occupy a non-pipelined resource?*

Entries describe **register forms**; memory operands are folded
automatically: a memory *read* adds a load µop on the model's load ports
(and load-to-use latency), a memory *write* adds store-address and
store-data µops.  This mirrors how both uops.info tables and OSACA
machine files decompose micro-fused x86 operations and keeps the table
size manageable while staying faithful.

Operand signatures
------------------
Operands are classified into one-letter codes:

===========  ==================================================
code         meaning
===========  ==================================================
``r``        general-purpose register
``i``        immediate
``m``        memory reference
``l``        label / branch target
``x y z``    x86 vector register by width (xmm/ymm/zmm)
``q``        AArch64 NEON vector or 128-bit scalar view (q-reg)
``s``        AArch64 scalar FP view (b/h/s/d regs)
``v``        AArch64 SVE vector register (z-regs)
``p``        AArch64 SVE predicate
``k``        x86 AVX-512 mask register
===========  ==================================================

A table entry's signature may use ``*`` to match any operand list.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Sequence

from ..isa.instruction import Instruction, OperandAccess
from ..isa.operands import (
    Immediate,
    LabelOperand,
    MemoryOperand,
    Operand,
    Register,
    RegisterClass,
)


class UnknownInstructionError(KeyError):
    """Raised when strict lookup fails for an instruction form."""


@dataclass(frozen=True)
class Uop:
    """One micro-operation: a unit of work issued to exactly one port.

    ``ports`` is the candidate set; ``cycles`` is how long the chosen
    port is occupied (1.0 for fully pipelined FUs).
    """

    ports: tuple[str, ...]
    cycles: float = 1.0

    def __post_init__(self):
        if not self.ports:
            raise ValueError("uop must have at least one candidate port")


def uop(ports: str | Sequence[str], cycles: float = 1.0) -> Uop:
    """Convenience constructor: ``uop("0|1|5")`` or ``uop(["0","1"])``."""
    if isinstance(ports, str):
        parts = tuple(p.strip() for p in ports.split("|") if p.strip())
    else:
        parts = tuple(ports)
    return Uop(ports=parts, cycles=cycles)


@dataclass(frozen=True)
class InstrEntry:
    """One instruction-form entry of the machine model table.

    Parameters
    ----------
    mnemonic:
        Lowercase mnemonic; may contain ``fnmatch`` wildcards
        (``vfmadd*pd``).
    signature:
        Comma-joined operand codes (see module docstring) or ``*``.
    uops:
        Execution µops of the register form, *excluding* any load/store
        µops (folded separately).
    latency:
        Result latency in cycles from last source to result.
    throughput:
        Optional explicit reciprocal throughput (cycles per instruction)
        enforced as a dedicated resource — used for divider/gather-style
        serialized operations where port occupancy alone would
        underestimate cost.
    divider:
        Cycles on the non-pipelined divide/sqrt unit.
    """

    mnemonic: str
    signature: str
    uops: tuple[Uop, ...]
    latency: float = 1.0
    throughput: Optional[float] = None
    divider: float = 0.0
    notes: str = ""

    def matches(self, mnemonic: str, signature: str) -> bool:
        if not fnmatch.fnmatchcase(mnemonic, self.mnemonic):
            return False
        if self.signature == "*":
            return True
        return self.signature == signature


@dataclass(frozen=True)
class ResolvedInstruction:
    """An instruction bound to machine resources.

    The analyzer consumes ``uops``/``throughput``/``divider``; the
    simulator additionally uses ``latency``, ``n_loads``/``n_stores``,
    and the frontend µop count.
    """

    instruction: Instruction
    uops: tuple[Uop, ...]
    latency: float
    throughput: Optional[float]
    divider: float
    n_loads: int
    n_stores: int
    load_latency: float
    from_default: bool = False
    entry: Optional[InstrEntry] = None

    @property
    def n_uops(self) -> int:
        return len(self.uops)

    @property
    def total_latency(self) -> float:
        """Dependency-edge latency including load-to-use time."""
        return self.latency + (self.load_latency if self.n_loads else 0.0)


_X86_SUFFIXES = "bwlq"


@dataclass
class MachineModel:
    """A microarchitecture description.

    See :mod:`repro.machine` for the provided instances.  All fields are
    plain data so that tests can construct synthetic models.
    """

    name: str
    isa: str
    ports: tuple[str, ...]
    entries: list[InstrEntry]

    # memory path -----------------------------------------------------------
    load_ports: tuple[str, ...] = ()
    store_agu_ports: tuple[str, ...] = ()
    store_data_ports: tuple[str, ...] = ()
    load_latency_gpr: float = 4.0
    load_latency_vec: float = 6.0
    #: maximum bytes a single load/store port moves per cycle
    load_width_bytes: int = 32
    store_width_bytes: int = 32
    #: restricted port set for loads wider than 32 B (e.g. Golden Cove
    #: serves 512-bit loads from only two of its three load AGUs); empty
    #: means "same as load_ports"
    load_ports_wide: tuple[str, ...] = ()

    # frontend / window -----------------------------------------------------
    dispatch_width: int = 6
    retire_width: int = 8
    rob_size: int = 320
    scheduler_size: int = 96
    load_buffer: int = 72
    store_buffer: int = 56
    move_elimination: bool = True
    #: hardware eliminates same-register zero idioms (xor r,r)
    zero_idioms: bool = True

    # identification / reporting --------------------------------------------
    simd_width_bytes: int = 32
    #: ports carrying general-purpose integer ALU work (Table II "Int units")
    int_alu_ports: tuple[str, ...] = ()
    #: ports carrying FP/SIMD arithmetic (Table II "FP vector units")
    fp_ports: tuple[str, ...] = ()
    branch_ports: tuple[str, ...] = ()
    description: str = ""

    _index: dict[str, list[InstrEntry]] = field(default_factory=dict, repr=False)

    def __post_init__(self):
        for p in self.load_ports + self.store_agu_ports + self.store_data_ports:
            if p not in self.ports:
                raise ValueError(f"memory port {p!r} not in port set")
        self._reindex()

    def _reindex(self) -> None:
        self._index = {}
        for e in self.entries:
            if any(ch in e.mnemonic for ch in "*?["):
                self._index.setdefault("*wild*", []).append(e)
            else:
                self._index.setdefault(e.mnemonic, []).append(e)

    def add_entries(self, entries: Iterable[InstrEntry]) -> None:
        self.entries.extend(entries)
        self._reindex()

    # -- signature computation ----------------------------------------------

    def operand_code(self, op: Operand) -> str:
        if isinstance(op, Immediate):
            return "i"
        if isinstance(op, LabelOperand):
            return "l"
        if isinstance(op, MemoryOperand):
            if op.index is not None and op.index.reg_class is RegisterClass.VEC:
                return "g"  # vector-indexed (gather/scatter) address
            return "m"
        assert isinstance(op, Register)
        rc = op.reg_class
        if rc in (RegisterClass.GPR, RegisterClass.ZERO, RegisterClass.IP):
            return "r"
        if rc is RegisterClass.MASK:
            return "k"
        if rc is RegisterClass.PRED:
            return "p"
        if rc is RegisterClass.FLAGS:
            return "r"
        # vector registers
        if self.isa == "x86":
            return {128: "x", 256: "y", 512: "z"}.get(op.width, "x")
        if op.name.startswith("z"):
            return "v"
        if op.arrangement is not None or op.name.startswith(("v", "q")):
            return "q"
        return "s"

    def signature(self, instr: Instruction) -> str:
        return ",".join(self.operand_code(o) for o in instr.operands)

    # -- lookup ---------------------------------------------------------------

    def _candidate_mnemonics(self, mnemonic: str) -> list[str]:
        cands = [mnemonic]
        if self.isa == "x86" and len(mnemonic) > 2 and mnemonic[-1] in _X86_SUFFIXES:
            cands.append(mnemonic[:-1])
        return cands

    def find_entry(self, mnemonic: str, signature: str) -> Optional[InstrEntry]:
        """Find the best entry for a mnemonic/signature pair.

        Tries, in order: exact signature; signature with memory operands
        substituted by the likely register class (register-form folding);
        wildcard signature; all of the above with the x86 size suffix
        stripped; finally wildcard-mnemonic entries.
        """
        sigs = [signature]
        if "m" in signature.split(","):
            sigs.extend(self._folded_signatures(mnemonic, signature))
        # Exact-signature entries always win over wildcard-signature
        # entries, regardless of table order.
        for cand in self._candidate_mnemonics(mnemonic):
            bucket = self._index.get(cand, ())
            for sig in sigs:
                for e in bucket:
                    if e.signature == sig and e.matches(cand, sig):
                        return e
            for e in bucket:
                if e.signature == "*":
                    return e
        for cand in self._candidate_mnemonics(mnemonic):
            for e in self._index.get("*wild*", ()):
                for sig in sigs + ["*"]:
                    if e.matches(cand, sig):
                        return e
        return None

    def _folded_signatures(self, mnemonic: str, signature: str) -> list[str]:
        """Register-form signatures to try when a memory operand exists."""
        parts = signature.split(",")
        non_mem = [p for p in parts if p != "m"]
        # Guess the register class a memory operand stands for: the widest
        # vector class present, else GPR.
        guess = "r"
        for pref in ("z", "y", "x", "v", "q", "s"):
            if pref in non_mem:
                guess = pref
                break
        folded = [p if p != "m" else guess for p in parts]
        out = [",".join(folded)]
        # Pure load/store forms reduce to the register-only signature.
        out.append(",".join(non_mem))
        return out

    # -- resolution -----------------------------------------------------------

    def resolve(self, instr: Instruction, strict: bool = False) -> ResolvedInstruction:
        """Bind an instruction to µops, latency, and memory traffic.

        With ``strict=True`` an unknown form raises
        :class:`UnknownInstructionError`; otherwise a conservative
        single-µop default on all integer ports is used and flagged via
        ``from_default``.
        """
        from ..isa.idioms import is_zero_idiom

        if self.zero_idioms and is_zero_idiom(instr):
            return ResolvedInstruction(
                instruction=instr,
                uops=(),
                latency=0.0,
                throughput=None,
                divider=0.0,
                n_loads=0,
                n_stores=0,
                load_latency=0.0,
                entry=InstrEntry(
                    mnemonic=instr.mnemonic,
                    signature=self.signature(instr),
                    uops=(),
                    latency=0.0,
                    notes="zero idiom (renamer-eliminated)",
                ),
            )

        sig = self.signature(instr)
        entry = self.find_entry(instr.mnemonic, sig)

        n_loads = sum(
            1
            for o, a in zip(instr.operands, instr.accesses)
            if isinstance(o, MemoryOperand) and (a & OperandAccess.READ)
        )
        n_stores = sum(
            1
            for o, a in zip(instr.operands, instr.accesses)
            if isinstance(o, MemoryOperand) and (a & OperandAccess.WRITE)
        )

        from_default = False
        if entry is None:
            if strict:
                raise UnknownInstructionError(
                    f"{self.name}: no entry for {instr.mnemonic!r} ({sig})"
                )
            from_default = True
            default_ports = self._default_ports(instr)
            entry = InstrEntry(
                mnemonic=instr.mnemonic,
                signature=sig,
                uops=(Uop(ports=default_ports),) if default_ports else (),
                latency=1.0,
                notes="default",
            )

        uops = list(entry.uops)
        # Fold memory µops, splitting wide accesses into port-width chunks
        # (Zen 4 double-pumps 512-bit ops; Golden Cove needs two
        # store-data slots for a zmm store).
        load_lat = 0.0
        mem_bytes = self._access_bytes(instr)
        gather_like = "gather" in (entry.notes or "") or "scatter" in (entry.notes or "")
        if n_loads:
            wants_vec = any(
                isinstance(o, Register) and o.reg_class is RegisterClass.VEC
                for o in instr.operands
            )
            load_lat = self.load_latency_vec if wants_vec else self.load_latency_gpr
            if gather_like:
                # gather entries carry the full measured load-to-use
                # latency already
                load_lat = 0.0
            chunks = max(1, -(-mem_bytes // self.load_width_bytes))
            ports = self.load_ports
            if mem_bytes > 32 and self.load_ports_wide:
                ports = self.load_ports_wide
            for _ in range(n_loads * chunks):
                uops.append(Uop(ports=ports))
        if n_stores:
            chunks = max(1, -(-mem_bytes // self.store_width_bytes))
            for _ in range(n_stores * chunks):
                if self.store_agu_ports:
                    uops.append(Uop(ports=self.store_agu_ports))
                if self.store_data_ports:
                    uops.append(Uop(ports=self.store_data_ports))
        # AArch64 writeback addressing adds a trivial int µop.
        for o in instr.memory_operands:
            if o.has_writeback:
                uops.append(Uop(ports=self._int_alu_ports()))

        return ResolvedInstruction(
            instruction=instr,
            uops=tuple(uops),
            latency=entry.latency,
            throughput=entry.throughput,
            divider=entry.divider,
            n_loads=n_loads,
            n_stores=n_stores,
            load_latency=load_lat,
            from_default=from_default,
            entry=entry,
        )

    def _access_bytes(self, instr: Instruction) -> int:
        """Width in bytes of a memory access made by *instr*.

        Uses the widest register operand as a proxy — correct for the
        mov/arithmetic/ld/st vocabulary this model targets.
        """
        widest = 0
        for o in instr.operands:
            if isinstance(o, Register) and o.reg_class in (
                RegisterClass.VEC,
                RegisterClass.GPR,
                RegisterClass.ZERO,
            ):
                widest = max(widest, o.width)
        return max(1, widest // 8) if widest else 8

    def _int_alu_ports(self) -> tuple[str, ...]:
        """Ports carrying simple integer ALU work (model-specific hint)."""
        hint = [p for p in self.ports if p.startswith(("i", "alu"))]
        if hint:
            return tuple(hint)
        # Intel-style numeric ports: assume 0/1/5/6-style ALU set exists;
        # fall back to every non-memory port.
        mem = set(self.load_ports) | set(self.store_agu_ports) | set(
            self.store_data_ports
        )
        return tuple(p for p in self.ports if p not in mem) or self.ports

    def _default_ports(self, instr: Instruction) -> tuple[str, ...]:
        if instr.is_branch:
            branch = [p for p in self.ports if p.startswith(("b", "br"))]
            if branch:
                return tuple(branch)
        return self._int_alu_ports()

    # -- reporting helpers ----------------------------------------------------

    def coverage(self, instructions: Iterable[Instruction]) -> dict:
        """Fraction of instructions with real (non-default) entries."""
        total = known = 0
        missing: list[str] = []
        for ins in instructions:
            total += 1
            r = self.resolve(ins)
            if r.from_default:
                missing.append(f"{ins.mnemonic} ({self.signature(ins)})")
            else:
                known += 1
        return {
            "total": total,
            "known": known,
            "coverage": known / total if total else 1.0,
            "missing": missing,
        }
