"""Golden Cove machine model (Intel Sapphire Rapids, Xeon Platinum 8470).

Port layout (Intel numbering), 12 ports — Table II of the paper:

====  =====================================================
port  functional units
====  =====================================================
0     int ALU, shift, branch, FP FMA/ADD/MUL (512-bit pair), FP divide
1     int ALU, int MUL, LEA, FP FMA/MUL (≤256 bit), FP ADD
5     int ALU, LEA, shuffle, FP FMA/ADD/MUL (512-bit pair)
6     int ALU, shift, branch
10    int ALU
2,3   load AGU (512-bit capable)
11    load AGU (≤256 bit)
7,8   store AGU
4,9   store data (2 × 256 bit/cy, one 512-bit store uses both)
====  =====================================================

Key derived numbers (paper Table III): 2×512-bit FP pipes → 16 DP
elements/cy for vector ADD/MUL/FMA; FADD latency 2 (halved vs. Ice
Lake), MUL/FMA latency 4 (scalar FMA 5); scalar throughput 2/cy;
``vdivpd`` 0.5 DP elements/cy at latency 14; gather 1/3 cache line per
cycle at latency 20.
"""

from __future__ import annotations

from .model import MachineModel
from .x86_common import X86Params, build_x86_entries

PARAMS = X86Params(
    alu="0|1|5|6|10",
    shift="0|6",
    branch="0|6",
    lea="0|1|5|6",
    imul="1",
    imul_lat=3.0,
    fp_add={"x": "1|5", "y": "1|5", "z": "0|5"},
    fp_mul={"x": "0|1", "y": "0|1", "z": "0|5"},
    fp_fma={"x": "0|1", "y": "0|1", "z": "0|5"},
    fp_add_lat=2.0,
    fp_mul_lat=4.0,
    fp_fma_lat=4.0,
    fp_add_lat_scalar=2.0,
    fp_mul_lat_scalar=4.0,
    fp_fma_lat_scalar=5.0,
    fp_div_port="0",
    div_cycles={"s": 4.0, "x": 4.0, "y": 8.0, "z": 16.0},
    div_lat={"s": 14.0, "x": 14.0, "y": 14.0, "z": 14.0},
    sqrt_cycles={"s": 6.0, "x": 6.0, "y": 12.0, "z": 24.0},
    sqrt_lat={"s": 19.0, "x": 19.0, "y": 19.0, "z": 19.0},
    fp_bool={"x": "0|1|5", "y": "0|1|5", "z": "0|5"},
    shuffle={"x": "1|5", "y": "1|5", "z": "5"},
    shuffle_lat=1.0,
    cross_lane={"y": "5", "z": "5"},
    cross_lane_lat=3.0,
    vec_int={"x": "0|1|5", "y": "0|1|5", "z": "0|5"},
    vec_int_lat=1.0,
    transfer="0",
    transfer_lat=3.0,
    cvt={"x": "0|1", "y": "0|1", "z": "0|5"},
    cvt_lat=4.0,
    fp_cmp_lat=3.0,
    gather={"x": (3.0, 20.0), "y": (3.0, 20.0), "z": (3.0, 20.0)},
    gather_extra_ports="0|5",
    mask_ports="0|5",
    mask_lat=1.0,
    uops_per_op={"x": 1, "y": 1, "z": 1},
    has_avx512=True,
)

GOLDEN_COVE = MachineModel(
    name="golden_cove",
    isa="x86",
    ports=("0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11"),
    entries=build_x86_entries(PARAMS),
    load_ports=("2", "3", "11"),
    load_ports_wide=("2", "3"),
    store_agu_ports=("7", "8"),
    store_data_ports=("4", "9"),
    load_latency_gpr=5.0,
    load_latency_vec=7.0,
    load_width_bytes=64,
    store_width_bytes=32,
    dispatch_width=6,
    retire_width=8,
    rob_size=512,
    scheduler_size=205,
    load_buffer=192,
    store_buffer=114,
    move_elimination=True,
    zero_idioms=True,
    simd_width_bytes=64,
    int_alu_ports=("0", "1", "5", "6", "10"),
    fp_ports=("0", "1", "5"),
    branch_ports=("0", "6"),
    description=(
        "Intel Golden Cove P-core as in Sapphire Rapids (Xeon Platinum "
        "8470): 12 ports, 2x512-bit FP pipes, 512-entry ROB, 6-wide "
        "allocation."
    ),
)
