"""Machine-model serialization.

OSACA ships machine models as editable data files so users can add
microarchitectures without touching the tool.  This module provides the
same workflow: `MachineModel` ↔ JSON round-trips, so a user can dump a
shipped model, edit latencies/ports (e.g. from their own
microbenchmarks), and load it back::

    from repro.machine import get_machine_model
    from repro.machine.io import save_model, load_model

    save_model(get_machine_model("zen4"), "my_zen4.json")
    # ... edit ...
    model = load_model("my_zen4.json")

The format is deliberately flat and diff-friendly: one JSON object per
instruction-form entry.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .model import InstrEntry, MachineModel, Uop

FORMAT_VERSION = 1

_MODEL_FIELDS = [
    "name", "isa", "ports",
    "load_ports", "store_agu_ports", "store_data_ports",
    "load_latency_gpr", "load_latency_vec",
    "load_width_bytes", "store_width_bytes", "load_ports_wide",
    "dispatch_width", "retire_width", "rob_size", "scheduler_size",
    "load_buffer", "store_buffer",
    "move_elimination", "zero_idioms",
    "simd_width_bytes", "int_alu_ports", "fp_ports", "branch_ports",
    "description",
]


def model_to_dict(model: MachineModel) -> dict[str, Any]:
    """Serialize a model to plain data."""
    out: dict[str, Any] = {"format_version": FORMAT_VERSION}
    for f in _MODEL_FIELDS:
        v = getattr(model, f)
        out[f] = list(v) if isinstance(v, tuple) else v
    out["entries"] = [
        {
            "mnemonic": e.mnemonic,
            "signature": e.signature,
            "uops": [{"ports": list(u.ports), "cycles": u.cycles} for u in e.uops],
            "latency": e.latency,
            **({"throughput": e.throughput} if e.throughput is not None else {}),
            **({"divider": e.divider} if e.divider else {}),
            **({"notes": e.notes} if e.notes else {}),
        }
        for e in model.entries
    ]
    return out


def model_from_dict(data: dict[str, Any]) -> MachineModel:
    """Reconstruct a model from :func:`model_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported machine-file format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    entries = [
        InstrEntry(
            mnemonic=e["mnemonic"],
            signature=e["signature"],
            uops=tuple(
                Uop(ports=tuple(u["ports"]), cycles=u.get("cycles", 1.0))
                for u in e["uops"]
            ),
            latency=e.get("latency", 1.0),
            throughput=e.get("throughput"),
            divider=e.get("divider", 0.0),
            notes=e.get("notes", ""),
        )
        for e in data["entries"]
    ]
    kwargs: dict[str, Any] = {}
    for f in _MODEL_FIELDS:
        if f not in data:
            continue
        v = data[f]
        kwargs[f] = tuple(v) if isinstance(v, list) else v
    kwargs["entries"] = entries
    return MachineModel(**kwargs)


def save_model(model: MachineModel, path: str | Path, indent: int = 1) -> None:
    """Write a model to a JSON machine file."""
    Path(path).write_text(json.dumps(model_to_dict(model), indent=indent))


def load_model(path: str | Path) -> MachineModel:
    """Load a model from a JSON machine file."""
    return model_from_dict(json.loads(Path(path).read_text()))
