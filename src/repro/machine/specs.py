"""Node-level chip specifications (the paper's Table I) and the
calibration constants for the frequency and memory models.

Everything here is *data*: either quoted directly from the paper's
Table I / text, or a small number of fitted constants whose provenance
is documented inline (used by :mod:`repro.simulator.frequency` and
:mod:`repro.simulator.multicore` to reproduce Figs. 2 and 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


@dataclass(frozen=True)
class FrequencySpec:
    """Parameters of the package-power frequency governor model.

    The governor solves ``n_active * c_isa * f^3 + p_uncore <= tdp`` for
    ``f`` and clamps to the per-ISA frequency cap.  ``c_isa`` has units
    W/GHz³ per core; caps are GHz.
    """

    tdp: float
    p_uncore: float
    #: per-ISA-class dynamic power coefficient (W/GHz^3/core)
    power_coeff: dict[str, float]
    #: per-ISA-class max (turbo/license) frequency in GHz
    freq_cap: dict[str, float]
    #: hard lower bound the governor never undershoots (GHz)
    freq_floor: float


@dataclass(frozen=True)
class MemorySpec:
    """Cache and memory-interface parameters per chip."""

    l1_bytes: int
    l2_bytes: int
    l3_bytes: int
    line_bytes: int
    main_memory_bytes: int
    memory_type: str
    #: theoretical peak bandwidth, GB/s per socket
    bw_theoretical: float
    #: measured sustainable bandwidth, GB/s per socket (paper Table I)
    bw_sustained: float
    #: single-core sustainable load bandwidth, GB/s (fit: saturation curve)
    bw_single_core: float
    ccnuma_domains: int
    #: write-allocate policy of the chip: "always" | "claim" | "speci2m"
    wa_policy: str
    #: memory-bandwidth utilization above which SpecI2M engages
    speci2m_threshold: float = 0.6
    #: fraction of WA traffic SpecI2M eliminates once engaged (paper: ~25%)
    speci2m_efficiency: float = 0.25
    #: residual read traffic fraction for NT stores (SPR: ~10%)
    nt_residual: float = 0.0


@dataclass(frozen=True)
class ChipSpec:
    """One row of the paper's Table I plus model calibration data."""

    name: str
    chip: str
    uarch: str
    cores: int
    freq_base: float  #: GHz
    freq_max: float  #: GHz
    #: double-precision FLOPs per cycle per core sustained by an
    #: FMA-only kernel (FMA counted as 2) — the achievable-peak basis
    dp_flops_per_cycle: int
    tdp: float  #: W
    #: marketing-theoretical FLOPs/cycle when it differs (AMD counts the
    #: separate FADD pipes on top of the FMA pipes: 16 + 8 = 24)
    dp_flops_per_cycle_theor: int | None = None
    frequency: FrequencySpec = field(repr=False, default=None)  # type: ignore[assignment]
    memory: MemorySpec = field(repr=False, default=None)  # type: ignore[assignment]
    #: ISA extension classes selectable on this chip for Fig. 2
    isa_classes: tuple[str, ...] = ()

    @property
    def theoretical_peak_tflops(self) -> float:
        per_cycle = self.dp_flops_per_cycle_theor or self.dp_flops_per_cycle
        return self.cores * self.freq_max * per_cycle / 1000.0


#: Grace CPU Superchip — one chip of the two-socket system.
GRACE = ChipSpec(
    name="Nvidia Grace Superchip",
    chip="gcs",
    uarch="neoverse_v2",
    cores=72,
    freq_base=3.4,
    freq_max=3.4,
    dp_flops_per_cycle=16,  # 4 pipes x 2 DP lanes x 2 (FMA)
    tdp=250.0,
    frequency=FrequencySpec(
        tdp=250.0,
        p_uncore=50.0,
        # Grace never throttles for vector-heavy code: the budget covers
        # all 72 cores at 3.4 GHz for every ISA class (paper Fig. 2).
        power_coeff={"scalar": 0.055, "neon": 0.060, "sve": 0.060},
        freq_cap={"scalar": 3.4, "neon": 3.4, "sve": 3.4},
        freq_floor=3.4,
    ),
    memory=MemorySpec(
        l1_bytes=64 * KIB,
        l2_bytes=1 * MIB,
        l3_bytes=114 * MIB,
        line_bytes=64,
        main_memory_bytes=240 * GIB,
        memory_type="LPDDR5X",
        bw_theoretical=546.0,
        bw_sustained=467.0,
        bw_single_core=48.0,
        ccnuma_domains=1,
        wa_policy="claim",  # automatic cache-line claim, next-to-optimal
    ),
    isa_classes=("scalar", "neon", "sve"),
)

#: Intel Xeon Platinum 8470 (Sapphire Rapids) — one socket.
SAPPHIRE_RAPIDS = ChipSpec(
    name="Intel Xeon Platinum 8470",
    chip="spr",
    uarch="golden_cove",
    cores=52,
    freq_base=2.0,
    freq_max=3.8,
    dp_flops_per_cycle=32,  # 2 x 512-bit FMA pipes
    tdp=350.0,
    frequency=FrequencySpec(
        tdp=350.0,
        p_uncore=70.0,
        # Fit: SSE/AVX sustain 3.0 GHz across the socket (78% of turbo);
        # AVX-512 falls to the 2.0 GHz base (53% of turbo) — paper Fig. 2.
        power_coeff={"scalar": 0.190, "sse": 0.199, "avx": 0.199, "avx512": 0.672},
        freq_cap={"scalar": 3.8, "sse": 3.8, "avx": 3.8, "avx512": 3.3},
        freq_floor=2.0,
    ),
    memory=MemorySpec(
        l1_bytes=48 * KIB,
        l2_bytes=2 * MIB,
        l3_bytes=105 * MIB,
        line_bytes=64,
        main_memory_bytes=512 * GIB,
        memory_type="DDR5",
        bw_theoretical=307.0,
        bw_sustained=273.0,
        bw_single_core=22.0,
        ccnuma_domains=4,  # SNC mode: 13 cores per domain
        wa_policy="speci2m",
        speci2m_threshold=0.70,
        speci2m_efficiency=0.25,
        nt_residual=0.10,
    ),
    isa_classes=("scalar", "sse", "avx", "avx512"),
)

#: AMD EPYC 9684X (Genoa-X) — one socket.
GENOA = ChipSpec(
    name="AMD EPYC 9684X",
    chip="genoa",
    uarch="zen4",
    cores=96,
    freq_base=2.55,
    freq_max=3.7,
    dp_flops_per_cycle=16,  # 2 x 256-bit FMA pipes (512-bit split)
    dp_flops_per_cycle_theor=24,  # marketing adds the 2 FADD pipes
    tdp=400.0,
    frequency=FrequencySpec(
        tdp=400.0,
        p_uncore=100.0,
        # Fit: all ISA widths sustain the same frequency, decaying to
        # 3.1 GHz (84% of turbo) at full socket — paper Fig. 2.
        power_coeff={"scalar": 0.105, "sse": 0.105, "avx": 0.105, "avx512": 0.105},
        freq_cap={"scalar": 3.7, "sse": 3.7, "avx": 3.7, "avx512": 3.7},
        freq_floor=2.55,
    ),
    memory=MemorySpec(
        l1_bytes=32 * KIB,
        l2_bytes=1 * MIB,
        l3_bytes=1152 * MIB,  # 3D V-Cache
        line_bytes=64,
        main_memory_bytes=384 * GIB,
        memory_type="DDR5",
        bw_theoretical=461.0,
        bw_sustained=360.0,
        bw_single_core=38.0,
        ccnuma_domains=1,
        wa_policy="always",  # only NT stores evade write-allocates
    ),
    isa_classes=("scalar", "sse", "avx", "avx512"),
)

CHIP_SPECS: dict[str, ChipSpec] = {
    "gcs": GRACE,
    "grace": GRACE,
    "spr": SAPPHIRE_RAPIDS,
    "sapphire_rapids": SAPPHIRE_RAPIDS,
    "genoa": GENOA,
    "zen4": GENOA,
}


def get_chip_spec(name: str) -> ChipSpec:
    """Look up a chip spec by chip alias (``gcs``/``spr``/``genoa``)."""
    key = name.strip().lower().replace(" ", "_").replace("-", "_")
    if key not in CHIP_SPECS:
        raise ValueError(f"unknown chip {name!r}; known: {sorted(CHIP_SPECS)}")
    return CHIP_SPECS[key]
