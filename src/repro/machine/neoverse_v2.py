"""Neoverse V2 machine model (Nvidia Grace CPU Superchip).

Port layout, 17 ports — the paper's Fig. 1 / Table II, compiled from
Arm's Software Optimization Guide:

===========  ====================================================
port         functional units
===========  ====================================================
b0, b1       branch
i0…i3        single-cycle integer ALU
m0, m1       multi-cycle integer (MUL/MADD/DIV, CRC, some flags)
v0…v3        FP / ASIMD / SVE pipes (128-bit each; FDIV on v0)
l0, l1, l2   load AGUs (3 × 128 bit/cy)
sa0, sa1     store pipes (2 × 128 bit/cy, address+data combined)
===========  ====================================================

Although the core implements SVE, the vector length is 128 bit — a
quarter of Golden Cove's 512-bit registers — so peak vector throughput
is 4 pipes × 2 DP lanes = 8 elements/cy, identical to a *scalar*
throughput of 4/cy that no x86 competitor reaches.  Latencies are the
lowest of the three cores for every instruction in the paper's
Table III (FADD 2, FMUL 3, FMLA 4, vector FDIV 5, gather 9).
"""

from __future__ import annotations

from .model import InstrEntry, MachineModel, uop

V = "v0|v1|v2|v3"
I4 = "i0|i1|i2|i3"
I6 = "i0|i1|i2|i3|m0|m1"
M = "m0|m1"
B = "b0|b1"
L = "l0|l1|l2"


def _entries() -> list[InstrEntry]:
    E: list[InstrEntry] = []

    # -- integer -------------------------------------------------------------
    for m in ("add", "sub", "and", "orr", "eor", "bic", "orn", "eon"):
        for sig in ("r,r,r", "r,r,i"):
            E.append(InstrEntry(m, sig, (uop(I6),), latency=1.0))
    for m in ("adds", "subs", "ands", "bics"):
        for sig in ("r,r,r", "r,r,i"):
            E.append(InstrEntry(m, sig, (uop(I4),), latency=1.0))
    for m in ("cmp", "cmn", "tst"):
        for sig in ("r,r", "r,i"):
            E.append(InstrEntry(m, sig, (uop(I4),), latency=1.0))
    E.append(InstrEntry("mul", "r,r,r", (uop(M),), latency=2.0))
    E.append(InstrEntry("smulh", "r,r,r", (uop(M),), latency=3.0))
    E.append(InstrEntry("umulh", "r,r,r", (uop(M),), latency=3.0))
    for m in ("madd", "msub"):
        E.append(InstrEntry(m, "r,r,r,r", (uop(M),), latency=2.0))
    for m in ("sdiv", "udiv"):
        E.append(InstrEntry(m, "r,r,r", (uop("m0"),), latency=12.0, divider=5.0))
    for m in ("lsl", "lsr", "asr", "ror"):
        for sig in ("r,r,i", "r,r,r"):
            E.append(InstrEntry(m, sig, (uop(I4),), latency=1.0))
    for m in ("csel", "csinc", "csinv", "csneg", "cinc", "cneg"):
        E.append(InstrEntry(m, "r,r,r", (uop(I6),), latency=1.0))
    for m in ("cset", "csetm"):
        E.append(InstrEntry(m, "r", (uop(I6),), latency=1.0))
        E.append(InstrEntry(m, "r,l", (uop(I6),), latency=1.0))
    E.append(InstrEntry("mov", "r,r", (), latency=0.0, notes="move elimination"))
    E.append(InstrEntry("mov", "r,i", (uop(I6),), latency=1.0))
    for m in ("movz", "movk", "movn"):
        E.append(InstrEntry(m, "r,i", (uop(I6),), latency=1.0))
        E.append(InstrEntry(m, "*", (uop(I6),), latency=1.0))
    for m in ("adrp", "adr"):
        E.append(InstrEntry(m, "r,l", (uop(I6),), latency=1.0))
    for m in ("sxtw", "uxtw", "sxtb", "sxth", "uxtb", "uxth", "neg", "mvn",
              "rbit", "rev", "clz"):
        E.append(InstrEntry(m, "r,r", (uop(I4),), latency=1.0))
    for m in ("sbfiz", "ubfiz", "sbfx", "ubfx", "bfi", "bfxil", "extr"):
        E.append(InstrEntry(m, "*", (uop(I4),), latency=1.0))
    E.append(InstrEntry("nop", "*", (), latency=0.0))
    E.append(InstrEntry("prfm", "*", (), latency=0.0, notes="prefetch hint"))

    # -- branches -------------------------------------------------------------
    for m in ("b", "b.*", "br", "ret", "bl", "blr"):
        E.append(InstrEntry(m, "*", (uop(B),), latency=0.0))
    for m in ("cbz", "cbnz", "tbz", "tbnz"):
        E.append(InstrEntry(m, "*", (uop(B),), latency=0.0))

    # -- FP scalar -------------------------------------------------------------
    for m in ("fadd", "fsub", "fmin", "fmax", "fminnm", "fmaxnm", "fabd"):
        E.append(InstrEntry(m, "s,s,s", (uop(V),), latency=2.0))
    E.append(InstrEntry("fmul", "s,s,s", (uop(V),), latency=3.0))
    E.append(InstrEntry("fnmul", "s,s,s", (uop(V),), latency=3.0))
    for m in ("fmadd", "fmsub", "fnmadd", "fnmsub"):
        E.append(InstrEntry(m, "s,s,s,s", (uop(V),), latency=4.0))
    # paper Table III: GCS scalar FP divide = 0.4 elements/cy, latency 12
    E.append(InstrEntry("fdiv", "s,s,s", (uop("v0"),), latency=12.0, divider=2.5))
    E.append(InstrEntry("fsqrt", "s,s", (uop("v0"),), latency=13.0, divider=4.0))
    for m in ("fneg", "fabs"):
        E.append(InstrEntry(m, "s,s", (uop(V),), latency=2.0))
    # NOTE: the V2 renamer executes fmov d,d as a zero-cycle move, but a
    # static model without liveness cannot assume it (the paper's
    # Gauss-Seidel over-prediction stems from exactly this dependency).
    E.append(InstrEntry("fmov", "s,s", (uop(V),), latency=2.0))
    E.append(InstrEntry("fmov", "s,i", (uop(V),), latency=2.0))
    E.append(InstrEntry("fmov", "s,r", (uop(M),), latency=3.0, notes="gpr->fp transfer"))
    E.append(InstrEntry("fmov", "r,s", (uop(M),), latency=3.0, notes="fp->gpr transfer"))
    for m in ("fcmp", "fcmpe"):
        E.append(InstrEntry(m, "s,s", (uop("v0|v1"),), latency=3.0))
        E.append(InstrEntry(m, "s,i", (uop("v0|v1"),), latency=3.0))
    E.append(InstrEntry("fccmp", "*", (uop("v0|v1"),), latency=3.0))
    E.append(InstrEntry("fcsel", "s,s,s", (uop(V),), latency=2.0))
    E.append(InstrEntry("scvtf", "s,r", (uop(M), uop(V)), latency=6.0))
    E.append(InstrEntry("ucvtf", "s,r", (uop(M), uop(V)), latency=6.0))
    E.append(InstrEntry("fcvtzs", "r,s", (uop(V), uop(M)), latency=6.0))
    E.append(InstrEntry("fcvtzu", "r,s", (uop(V), uop(M)), latency=6.0))
    E.append(InstrEntry("fcvt", "s,s", (uop(V),), latency=3.0))
    E.append(InstrEntry("frintm", "s,s", (uop(V),), latency=3.0))
    E.append(InstrEntry("frintp", "s,s", (uop(V),), latency=3.0))

    # -- NEON (128-bit q / arrangement forms) ----------------------------------
    for m in ("fadd", "fsub", "fmin", "fmax", "fminnm", "fmaxnm", "fabd"):
        E.append(InstrEntry(m, "q,q,q", (uop(V),), latency=2.0))
    E.append(InstrEntry("fmul", "q,q,q", (uop(V),), latency=3.0))
    for m in ("fmla", "fmls"):
        E.append(InstrEntry(m, "q,q,q", (uop(V),), latency=4.0))
    # paper Table III: GCS vector FP divide = 0.4 elements/cy (2 lanes / 5 cy)
    E.append(InstrEntry("fdiv", "q,q,q", (uop("v0"),), latency=5.0, divider=5.0))
    E.append(InstrEntry("fsqrt", "q,q", (uop("v0"),), latency=13.0, divider=8.0))
    for m in ("fneg", "fabs"):
        E.append(InstrEntry(m, "q,q", (uop(V),), latency=2.0))
    E.append(InstrEntry("faddp", "q,q,q", (uop(V),), latency=3.0, notes="pairwise add"))
    E.append(InstrEntry("faddp", "s,q", (uop(V),), latency=3.0, notes="pairwise reduce"))
    for m in ("add", "sub"):
        E.append(InstrEntry(m, "q,q,q", (uop(V),), latency=2.0))
    for m in ("and", "orr", "eor", "bic"):
        E.append(InstrEntry(m, "q,q,q", (uop(V),), latency=1.0))
    for m in ("ext", "zip1", "zip2", "uzp1", "uzp2", "trn1", "trn2", "rev64"):
        E.append(InstrEntry(m, "*", (uop(V),), latency=2.0))
    E.append(InstrEntry("movi", "q,i", (uop(V),), latency=2.0))
    E.append(InstrEntry("mov", "q,q", (), latency=0.0, notes="move elimination"))
    E.append(InstrEntry("dup", "q,r", (uop(M), uop(V)), latency=5.0))
    E.append(InstrEntry("dup", "q,s", (uop(V),), latency=3.0))
    E.append(InstrEntry("dup", "q,q", (uop(V),), latency=3.0))
    E.append(InstrEntry("ins", "*", (uop(V),), latency=2.0))
    E.append(InstrEntry("umov", "r,q", (uop(M),), latency=5.0))
    E.append(InstrEntry("addv", "s,q", (uop(V),), latency=4.0))
    for m in ("shl", "ushr", "sshr", "sshll", "ushll"):
        E.append(InstrEntry(m, "q,q,i", (uop("v1|v3"),), latency=2.0))
    for m in ("scvtf", "ucvtf", "fcvtzs", "fcvtl", "fcvtn", "fcvtl2", "fcvtn2"):
        E.append(InstrEntry(m, "q,q", (uop(V),), latency=3.0))
    E.append(InstrEntry("fcmgt", "q,q,q", (uop(V),), latency=2.0))
    E.append(InstrEntry("fcmge", "q,q,q", (uop(V),), latency=2.0))

    # -- SVE (z registers at 128-bit VL) ---------------------------------------
    for m in ("fadd", "fsub", "fmin", "fmax", "fminnm", "fmaxnm"):
        E.append(InstrEntry(m, "v,v,v", (uop(V),), latency=2.0))
        E.append(InstrEntry(m, "v,p,v,v", (uop(V),), latency=2.0))
        E.append(InstrEntry(m, "v,p,v,i", (uop(V),), latency=2.0))
    E.append(InstrEntry("fmul", "v,v,v", (uop(V),), latency=3.0))
    E.append(InstrEntry("fmul", "v,p,v,v", (uop(V),), latency=3.0))
    for m in ("fmla", "fmls", "fnmla", "fnmls"):
        E.append(InstrEntry(m, "v,p,v,v", (uop(V),), latency=4.0))
        E.append(InstrEntry(m, "v,v,v", (uop(V),), latency=4.0))
    for m in ("fmad", "fmsb", "fnmad", "fnmsb"):
        E.append(InstrEntry(m, "v,p,v,v", (uop(V),), latency=4.0))
    E.append(InstrEntry("fdiv", "v,p,v,v", (uop("v0"),), latency=5.0, divider=5.0))
    E.append(InstrEntry("fdivr", "v,p,v,v", (uop("v0"),), latency=5.0, divider=5.0))
    E.append(InstrEntry("fsqrt", "v,p,v", (uop("v0"),), latency=13.0, divider=8.0))
    for m in ("fneg", "fabs"):
        E.append(InstrEntry(m, "v,p,v", (uop(V),), latency=2.0))
    E.append(InstrEntry("faddv", "s,p,v", (uop("v0|v1"),), latency=6.0, throughput=2.0,
                        notes="horizontal reduction"))
    E.append(InstrEntry("fadda", "s,p,s,v", (uop("v0"),), latency=8.0, throughput=4.0,
                        notes="ordered reduction"))
    for m in ("add", "sub"):
        E.append(InstrEntry(m, "v,v,v", (uop(V),), latency=2.0))
        E.append(InstrEntry(m, "v,p,v,v", (uop(V),), latency=2.0))
    E.append(InstrEntry("mul", "v,p,v,v", (uop("v0|v1"),), latency=4.0))
    for m in ("and", "orr", "eor", "bic"):
        E.append(InstrEntry(m, "v,v,v", (uop(V),), latency=1.0))
        E.append(InstrEntry(m, "v,p,v,v", (uop(V),), latency=1.0))
    for m in ("lsl", "lsr", "asr"):
        E.append(InstrEntry(m, "v,p,v,v", (uop("v1|v3"),), latency=2.0))
        E.append(InstrEntry(m, "v,v,i", (uop("v1|v3"),), latency=2.0))
    E.append(InstrEntry("sel", "v,p,v,v", (uop(V),), latency=2.0))
    E.append(InstrEntry("mov", "v,v", (), latency=0.0, notes="move elimination"))
    E.append(InstrEntry("mov", "v,p,v", (uop(V),), latency=2.0))
    E.append(InstrEntry("mov", "v,i", (uop(V),), latency=2.0))
    E.append(InstrEntry("mov", "v,r", (uop(M), uop(V)), latency=5.0))
    E.append(InstrEntry("dup", "v,r", (uop(M), uop(V)), latency=5.0))
    E.append(InstrEntry("dup", "v,i", (uop(V),), latency=2.0))
    E.append(InstrEntry("fdup", "v,i", (uop(V),), latency=2.0))
    E.append(InstrEntry("cpy", "v,p,r", (uop(M), uop(V)), latency=5.0))
    E.append(InstrEntry("fcpy", "v,p,i", (uop(V),), latency=2.0))
    E.append(InstrEntry("index", "v,r,r", (uop(M), uop(V)), latency=7.0))
    E.append(InstrEntry("index", "v,i,i", (uop(V),), latency=4.0))
    E.append(InstrEntry("index", "v,r,i", (uop(M), uop(V)), latency=7.0))
    E.append(InstrEntry("movprfx", "v,v", (), latency=0.0, notes="fused prefix"))
    E.append(InstrEntry("movprfx", "v,p,v", (), latency=0.0, notes="fused prefix"))
    for m in ("scvtf", "ucvtf", "fcvt", "fcvtzs"):
        E.append(InstrEntry(m, "v,p,v", (uop(V),), latency=3.0))
    for m in ("fcmgt", "fcmge", "fcmeq", "fcmlt", "fcmne"):
        E.append(InstrEntry(m, "p,p,v,v", (uop("v0|v1"),), latency=2.0))
        E.append(InstrEntry(m, "p,p,v,i", (uop("v0|v1"),), latency=2.0))

    # -- NEON/SVE extensions beyond the kernel corpus ---------------------------
    # reciprocal estimates/steps (Newton-Raphson division sequences)
    for m in ("frecpe", "frsqrte"):
        E.append(InstrEntry(m, "q,q", (uop("v0|v1"),), latency=3.0))
        E.append(InstrEntry(m, "s,s", (uop("v0|v1"),), latency=3.0))
        E.append(InstrEntry(m, "v,v", (uop("v0|v1"),), latency=3.0))
    for m in ("frecps", "frsqrts"):
        E.append(InstrEntry(m, "q,q,q", (uop(V),), latency=4.0))
        E.append(InstrEntry(m, "s,s,s", (uop(V),), latency=4.0))
        E.append(InstrEntry(m, "v,v,v", (uop(V),), latency=4.0))
    E.append(InstrEntry("fmulx", "q,q,q", (uop(V),), latency=3.0))
    E.append(InstrEntry("frecpx", "s,s", (uop("v0|v1"),), latency=3.0))
    # horizontal NEON reductions
    for m in ("fmaxv", "fminv", "fmaxnmv", "fminnmv"):
        E.append(InstrEntry(m, "s,q", (uop(V),), latency=4.0))
    for m in ("saddlv", "uaddlv", "smaxv", "umaxv", "sminv", "uminv"):
        E.append(InstrEntry(m, "s,q", (uop(V),), latency=4.0))
        E.append(InstrEntry(m, "r,q", (uop(V), uop(M)), latency=7.0))
    # NEON integer multiply-accumulate / widening
    for m in ("mla", "mls"):
        E.append(InstrEntry(m, "q,q,q", (uop("v0|v1"),), latency=4.0))
    for m in ("smull", "umull", "smull2", "umull2", "sqdmull"):
        E.append(InstrEntry(m, "q,q,q", (uop("v0|v1"),), latency=4.0))
    for m in ("sdot", "udot", "bfdot"):
        E.append(InstrEntry(m, "q,q,q", (uop(V),), latency=3.0))
        E.append(InstrEntry(m, "v,v,v", (uop(V),), latency=3.0))
    for m in ("xtn", "xtn2", "uqxtn", "sqxtn", "shrn", "shrn2"):
        E.append(InstrEntry(m, "q,q", (uop("v1|v3"),), latency=2.0))
        E.append(InstrEntry(m, "q,q,i", (uop("v1|v3"),), latency=2.0))
    for m in ("cnt", "rbit", "rev16", "rev32", "not", "mvn"):
        E.append(InstrEntry(m, "q,q", (uop(V),), latency=2.0))
    for m in ("tbl", "tbx"):
        E.append(InstrEntry(m, "q,q,q", (uop(V),), latency=2.0))
    for m in ("smax", "smin", "umax", "umin", "sabd", "uabd"):
        E.append(InstrEntry(m, "q,q,q", (uop(V),), latency=2.0))
        E.append(InstrEntry(m, "v,p,v,v", (uop(V),), latency=2.0))
    for m in ("sshl", "ushl", "srshl", "urshl"):
        E.append(InstrEntry(m, "q,q,q", (uop("v1|v3"),), latency=2.0))
    E.append(InstrEntry("addp", "q,q,q", (uop(V),), latency=2.0))
    E.append(InstrEntry("addv", "r,q", (uop(V), uop(M)), latency=7.0))
    # multi-structure loads/stores
    for m in ("ld2", "ld3", "ld4"):
        E.append(InstrEntry(m, "q,m", (uop(V),), latency=2.0, notes="deinterleave"))
    for m in ("st2", "st3", "st4"):
        E.append(InstrEntry(m, "q,m", (uop(V),), latency=1.0, notes="interleave"))
    # SVE integer compares and predicate-producing ops
    for m in ("cmpeq", "cmpne", "cmpgt", "cmpge", "cmplt", "cmple",
              "cmphi", "cmphs", "cmplo", "cmpls"):
        E.append(InstrEntry(m, "p,p,v,v", (uop("v0|v1"),), latency=2.0))
        E.append(InstrEntry(m, "p,p,v,i", (uop("v0|v1"),), latency=2.0))
    # SVE permutes
    for m in ("zip1", "zip2", "uzp1", "uzp2", "trn1", "trn2", "rev",
              "revb", "revh", "revw"):
        E.append(InstrEntry(m, "v,v,v", (uop(V),), latency=2.0))
        E.append(InstrEntry(m, "v,v", (uop(V),), latency=2.0))
        E.append(InstrEntry(m, "p,p,p", (uop(M),), latency=2.0))
    for m in ("sunpklo", "sunpkhi", "uunpklo", "uunpkhi", "punpklo", "punpkhi"):
        E.append(InstrEntry(m, "v,v", (uop(V),), latency=2.0))
        E.append(InstrEntry(m, "p,p", (uop(M),), latency=2.0))
    for m in ("lasta", "lastb", "clasta", "clastb"):
        E.append(InstrEntry(m, "s,p,v", (uop("v0|v1"),), latency=3.0))
        E.append(InstrEntry(m, "r,p,v", (uop("v0|v1"), uop(M)), latency=6.0))
        E.append(InstrEntry(m, "v,p,v,v", (uop("v0|v1"),), latency=3.0))
    E.append(InstrEntry("splice", "v,p,v,v", (uop("v0|v1"),), latency=3.0))
    E.append(InstrEntry("compact", "v,p,v", (uop("v0|v1"),), latency=3.0))
    E.append(InstrEntry("ext", "v,v,v,i", (uop(V),), latency=2.0))
    # SVE integer arithmetic extensions
    for m in ("mad", "msb", "mla", "mls"):
        E.append(InstrEntry(m, "v,p,v,v", (uop("v0|v1"),), latency=4.0))
    for m in ("sqadd", "uqadd", "sqsub", "uqsub", "abs", "neg"):
        E.append(InstrEntry(m, "v,p,v", (uop(V),), latency=2.0))
        E.append(InstrEntry(m, "v,v,v", (uop(V),), latency=2.0))
    for m in ("smulh", "umulh"):
        E.append(InstrEntry(m, "v,p,v,v", (uop("v0|v1"),), latency=5.0))
    E.append(InstrEntry("sdiv", "v,p,v,v", (uop("v0"),), latency=12.0, divider=11.0))
    E.append(InstrEntry("udiv", "v,p,v,v", (uop("v0"),), latency=12.0, divider=11.0))
    E.append(InstrEntry("adr", "v,g", (uop(V),), latency=2.0, notes="vector address"))
    E.append(InstrEntry("dupm", "v,i", (uop(V),), latency=2.0))
    # predicate manipulation
    for m in ("brka", "brkb", "brkpa", "brkpb"):
        E.append(InstrEntry(m, "p,p,p", (uop(M),), latency=2.0))
        E.append(InstrEntry(m, "*", (uop(M),), latency=2.0))
    for m in ("pfirst", "pnext"):
        E.append(InstrEntry(m, "p,p,p", (uop(M),), latency=2.0))
    E.append(InstrEntry("cntp", "r,p,p", (uop(M),), latency=3.0))
    for m in ("and", "orr", "eor", "bic", "nand", "nor", "orn"):
        E.append(InstrEntry(m, "p,p,p,p", (uop(M),), latency=1.0))
    E.append(InstrEntry("sel", "p,p,p,p", (uop(M),), latency=1.0))
    # SVE prefetches
    for m in ("prfd", "prfw", "prfh", "prfb"):
        E.append(InstrEntry(m, "*", (), latency=0.0, notes="prefetch hint"))
    # conversions at vector width
    for m in ("fcvtas", "fcvtau", "fcvtms", "fcvtmu", "fcvtns", "fcvtps",
              "frinta", "frinti", "frintx", "frintn", "frintz"):
        E.append(InstrEntry(m, "q,q", (uop(V),), latency=3.0))
        E.append(InstrEntry(m, "s,s", (uop(V),), latency=3.0))
        E.append(InstrEntry(m, "v,p,v", (uop(V),), latency=3.0))
        E.append(InstrEntry(m, "r,s", (uop(V), uop(M)), latency=6.0))

    # -- predicate bookkeeping --------------------------------------------------
    E.append(InstrEntry("ptrue", "p", (uop(M),), latency=2.0))
    E.append(InstrEntry("ptrue", "p,l", (uop(M),), latency=2.0))
    E.append(InstrEntry("ptrue", "*", (uop(M),), latency=2.0))
    E.append(InstrEntry("pfalse", "p", (uop(M),), latency=2.0))
    E.append(InstrEntry("ptest", "p,p", (uop(M),), latency=2.0))
    for m in ("whilelo", "whilelt", "whilele", "whilels"):
        E.append(InstrEntry(m, "p,r,r", (uop(M),), latency=2.0))
    for m in ("incd", "incw", "inch", "incb", "decd", "decw"):
        E.append(InstrEntry(m, "r", (uop(I6),), latency=1.0))
        E.append(InstrEntry(m, "r,*", (uop(I6),), latency=1.0))
    for m in ("cntd", "cntw", "cnth", "cntb"):
        E.append(InstrEntry(m, "r", (uop(I6),), latency=1.0))
        E.append(InstrEntry(m, "*", (uop(I6),), latency=1.0))
    E.append(InstrEntry("rdvl", "r,i", (uop(I6),), latency=1.0))

    # -- loads ------------------------------------------------------------------
    for m in ("ldr", "ldur"):
        for sig in ("r,m", "s,m", "q,m"):
            E.append(InstrEntry(m, sig, (), latency=0.0, notes="pure load"))
    for m in ("ldrb", "ldrh", "ldrsb", "ldrsh", "ldrsw"):
        E.append(InstrEntry(m, "r,m", (), latency=0.0, notes="pure load"))
    E.append(InstrEntry("ldp", "r,r,m", (), latency=0.0, notes="pure load pair"))
    E.append(InstrEntry("ldp", "s,s,m", (), latency=0.0, notes="pure load pair"))
    E.append(InstrEntry("ldp", "q,q,m", (uop(L),), latency=0.0,
                        notes="load pair, 2nd slot"))
    E.append(InstrEntry("ld1", "q,m", (), latency=0.0, notes="pure load"))
    for m in ("ld1d", "ld1w", "ld1b", "ld1h", "ldnt1d", "ldnt1w"):
        E.append(InstrEntry(m, "v,p,m", (), latency=0.0, notes="pure load"))
    E.append(InstrEntry("ld1rd", "v,p,m", (), latency=2.0, notes="bcast load"))
    E.append(InstrEntry("ld1rw", "v,p,m", (), latency=2.0, notes="bcast load"))
    # SVE gather: paper Table III — 1/4 cache line per cycle, latency 9
    E.append(InstrEntry("ld1d", "v,p,g", (uop("v0|v1"),), latency=9.0,
                        throughput=1.0, notes="gather"))
    E.append(InstrEntry("ld1w", "v,p,g", (uop("v0|v1"),), latency=9.0,
                        throughput=1.0, notes="gather"))

    # -- stores -----------------------------------------------------------------
    for m in ("str", "stur"):
        for sig in ("r,m", "s,m", "q,m"):
            E.append(InstrEntry(m, sig, (), latency=1.0, notes="pure store"))
    for m in ("strb", "strh"):
        E.append(InstrEntry(m, "r,m", (), latency=1.0, notes="pure store"))
    E.append(InstrEntry("stp", "r,r,m", (), latency=1.0, notes="pure store pair"))
    E.append(InstrEntry("stp", "q,q,m", (uop("sa0|sa1"),), latency=1.0,
                        notes="store pair, 2nd slot"))
    E.append(InstrEntry("st1", "q,m", (), latency=1.0, notes="pure store"))
    for m in ("st1d", "st1w", "st1b", "st1h", "stnt1d", "stnt1w"):
        E.append(InstrEntry(m, "v,p,m", (), latency=1.0, notes="pure store"))
    E.append(InstrEntry("st1d", "v,p,g", (uop("v0|v1"), uop("sa0|sa1")),
                        latency=2.0, throughput=2.0, notes="scatter"))

    return E


NEOVERSE_V2 = MachineModel(
    name="neoverse_v2",
    isa="aarch64",
    ports=(
        "b0", "b1",
        "i0", "i1", "i2", "i3", "m0", "m1",
        "v0", "v1", "v2", "v3",
        "l0", "l1", "l2",
        "sa0", "sa1",
    ),
    entries=_entries(),
    load_ports=("l0", "l1", "l2"),
    store_agu_ports=("sa0", "sa1"),
    store_data_ports=(),
    load_latency_gpr=4.0,
    load_latency_vec=6.0,
    load_width_bytes=16,
    store_width_bytes=16,
    dispatch_width=8,
    retire_width=8,
    rob_size=320,
    scheduler_size=160,
    load_buffer=96,
    store_buffer=64,
    move_elimination=True,
    zero_idioms=False,  # zeroing idioms are an x86 renamer feature
    simd_width_bytes=16,
    int_alu_ports=("i0", "i1", "i2", "i3", "m0", "m1"),
    fp_ports=("v0", "v1", "v2", "v3"),
    branch_ports=("b0", "b1"),
    description=(
        "Arm Neoverse V2 core as in the Nvidia Grace CPU Superchip: 17 "
        "ports, 4 FP/SIMD pipes of 128 bit (SVE VL=128), 8-wide "
        "dispatch, 320-entry ROB."
    ),
)
