"""What-if machine-model variants.

The paper's Sec. II singles out the Neoverse V2's 128-bit SVE registers
as its one weakness against the x86 cores ("only a fourth of Golden
Cove's 512 bit").  Because SVE code is vector-length agnostic, the
*same* compiled kernels would run unchanged on a hypothetical Grace
successor with wider vectors — making this a clean model-level
experiment: double the datapath, keep the instruction table.

:func:`widen_neoverse_v2` builds such a variant: per-instruction costs
(ports, latencies, divider occupancy) stay identical — Arm's wider
V-series datapaths have historically kept per-instruction timing — but
every 128-bit lane now carries twice the elements, and the load/store
ports move twice the bytes.  The ablation benchmark shows which kernels
benefit (compute-bound vector code) and which cannot (memory-bound
streams, scalar/latency-bound chains).
"""

from __future__ import annotations

import dataclasses

from .model import MachineModel
from .registry import get_machine_model


def widen_neoverse_v2(factor: int = 2) -> MachineModel:
    """A Neoverse V2 variant with ``factor``-times wider SVE datapaths.

    ``factor=2`` models VL=256 (Grace-successor speculation); per-µop
    timing is unchanged, per-lane width doubles.
    """
    if factor < 1 or factor & (factor - 1):
        raise ValueError("factor must be a power of two >= 1")
    base = get_machine_model("neoverse_v2")
    return dataclasses.replace(
        base,
        name=f"neoverse_v2_vl{128 * factor}",
        simd_width_bytes=base.simd_width_bytes * factor,
        load_width_bytes=base.load_width_bytes * factor,
        store_width_bytes=base.store_width_bytes * factor,
        entries=list(base.entries),
        description=(
            f"hypothetical Neoverse V2 variant with {128 * factor}-bit "
            f"SVE vector length (what-if study; per-instruction timing "
            f"unchanged)"
        ),
    )


def elements_per_vector(model: MachineModel) -> int:
    """DP elements per SVE vector register on this model."""
    return model.simd_width_bytes // 8
