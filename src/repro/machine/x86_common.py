"""Shared x86-64 instruction vocabulary.

Golden Cove and Zen 4 execute the same instruction set; what differs is
the port bindings, latencies, and divider behaviour.  This module builds
the (mnemonic, signature) entry list once from a per-microarchitecture
:class:`X86Params` record, so each model file states only the numbers.

The vocabulary covers everything the kernel code generator emits plus
the common compiler output around it (spills, address setup, compares,
conversions, shuffles, gathers, NT stores, AVX-512 mask ops).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .model import InstrEntry, Uop, uop

#: x86 vector width codes in increasing size
WIDTHS = ("x", "y", "z")


@dataclass
class X86Params:
    """Per-microarchitecture numbers feeding :func:`build_x86_entries`.

    Port-map dictionaries are keyed by vector width code (``x``/``y``/
    ``z``); ``uops_per_op`` is 2 for double-pumped widths (Zen 4 zmm).
    """

    alu: str
    shift: str
    branch: str
    lea: str
    imul: str
    imul_lat: float

    fp_add: dict[str, str]
    fp_mul: dict[str, str]
    fp_fma: dict[str, str]
    fp_add_lat: float
    fp_mul_lat: float
    fp_fma_lat: float
    fp_add_lat_scalar: float
    fp_mul_lat_scalar: float
    fp_fma_lat_scalar: float

    fp_div_port: str
    #: divider occupancy per width code plus "s" for scalar
    div_cycles: dict[str, float]
    div_lat: dict[str, float]
    sqrt_cycles: dict[str, float]
    sqrt_lat: dict[str, float]

    fp_bool: dict[str, str]
    shuffle: dict[str, str]
    shuffle_lat: float
    cross_lane: dict[str, str]
    cross_lane_lat: float
    vec_int: dict[str, str]
    vec_int_lat: float

    transfer: str  #: gpr <-> vec transfer port(s)
    transfer_lat: float
    cvt: dict[str, str]
    cvt_lat: float
    fp_cmp_lat: float

    #: gather: width code -> (reciprocal throughput, latency)
    gather: dict[str, tuple[float, float]]
    gather_extra_ports: str

    mask_ports: str = ""  #: AVX-512 mask ALU (empty if no AVX-512 masks)
    mask_lat: float = 1.0
    #: µops per arithmetic op, per width (double pumping)
    uops_per_op: dict[str, int] = field(default_factory=lambda: {"x": 1, "y": 1, "z": 1})
    has_avx512: bool = True


def _arith(
    mnemonics: list[str],
    width: str,
    ports: str,
    lat: float,
    n_uops: int,
    three_op: bool,
    notes: str = "",
    divider: float = 0.0,
    throughput: float | None = None,
) -> list[InstrEntry]:
    sig = ",".join([width] * (3 if three_op else 2))
    us = tuple(uop(ports) for _ in range(n_uops))
    return [
        InstrEntry(m, sig, us, latency=lat, divider=divider, throughput=throughput, notes=notes)
        for m in mnemonics
    ]


def build_x86_entries(p: X86Params) -> list[InstrEntry]:
    """Construct the full x86 entry list for one microarchitecture."""
    E: list[InstrEntry] = []
    widths = WIDTHS if p.has_avx512 else ("x", "y")

    # -- integer core -------------------------------------------------------
    alu = (uop(p.alu),)
    for sig in ("r,r", "i,r"):
        for m in ("add", "sub", "and", "or", "xor", "adc", "sbb", "cmp", "test"):
            E.append(InstrEntry(m, sig, alu, latency=1.0))
        E.append(InstrEntry("mov", sig, () if sig == "r,r" else alu,
                            latency=0.0 if sig == "r,r" else 1.0,
                            notes="move elimination" if sig == "r,r" else ""))
    E.append(InstrEntry("movabs", "i,r", alu, latency=1.0))
    for m in ("inc", "dec", "neg", "not"):
        E.append(InstrEntry(m, "r", alu, latency=1.0))
    for sig in ("r,r", "i,r,r"):
        E.append(InstrEntry("imul", sig, (uop(p.imul),), latency=p.imul_lat))
    E.append(InstrEntry("lea", "m,r", (uop(p.lea),), latency=1.0))
    for m in ("shl", "shr", "sar", "sal", "rol", "ror"):
        for sig in ("i,r", "r,r", "r"):
            E.append(InstrEntry(m, sig, (uop(p.shift),), latency=1.0))
    for m in ("movzx", "movsx", "movzb", "movsbl", "movzbl", "movslq", "movzwl"):
        E.append(InstrEntry(m, "r,r", alu, latency=1.0))
    E.append(InstrEntry("set*", "r", alu, latency=1.0))
    E.append(InstrEntry("cmov*", "r,r", alu, latency=1.0))
    for m in ("cdq", "cqo", "cdqe", "cltq", "cltd", "cqto"):
        E.append(InstrEntry(m, "", alu, latency=1.0))
        E.append(InstrEntry(m, "*", alu, latency=1.0))
    E.append(InstrEntry("nop", "*", (), latency=0.0))
    # memory-form int ops: pure load/store handled by folding
    for m in ("mov", "movzx", "movsx"):
        E.append(InstrEntry(m, "m,r", (), latency=0.0, notes="pure load"))
    E.append(InstrEntry("mov", "r,m", (), latency=1.0, notes="pure store"))
    E.append(InstrEntry("mov", "i,m", (), latency=1.0, notes="pure store"))
    E.append(InstrEntry("movnti", "r,m", (), latency=1.0, notes="NT store"))
    for m in ("add", "sub", "and", "or", "xor", "cmp", "test"):
        E.append(InstrEntry(m, "m,r", alu, latency=1.0))
        E.append(InstrEntry(m, "r,m", alu, latency=1.0))
        E.append(InstrEntry(m, "i,m", alu, latency=1.0))
    E.append(InstrEntry("push", "r", (), latency=1.0))
    E.append(InstrEntry("pop", "r", (), latency=1.0))
    # integer divide (rarely in FP kernels, modeled coarsely)
    for m in ("div", "idiv"):
        E.append(InstrEntry(m, "r", (uop(p.fp_div_port),), latency=20.0, divider=12.0))

    # -- control flow --------------------------------------------------------
    br = (uop(p.branch),)
    E.append(InstrEntry("jmp", "l", br, latency=0.0))
    E.append(InstrEntry("j*", "l", br, latency=0.0, notes="cond. branch"))
    E.append(InstrEntry("call", "*", br, latency=0.0))
    E.append(InstrEntry("ret", "*", br, latency=0.0))

    # -- FP scalar & packed arithmetic ---------------------------------------
    ADD_LIKE = ["addpd", "addps", "subpd", "subps", "minpd", "minps", "maxpd", "maxps"]
    MUL_LIKE = ["mulpd", "mulps"]
    ADD_LIKE_S = ["addsd", "addss", "subsd", "subss", "minsd", "minss", "maxsd", "maxss"]
    MUL_LIKE_S = ["mulsd", "mulss"]

    for w in widths:
        n = p.uops_per_op.get(w, 1)
        # VEX three-operand forms for all widths
        E += _arith(["v" + m for m in ADD_LIKE], w, p.fp_add[w], p.fp_add_lat, n, True)
        E += _arith(["v" + m for m in MUL_LIKE], w, p.fp_mul[w], p.fp_mul_lat, n, True)
        fma = [
            f"v{k}{o}{t}"
            for k in ("fmadd", "fmsub", "fnmadd", "fnmsub")
            for o in ("132", "213", "231")
            for t in ("pd", "ps")
        ]
        E += _arith(fma, w, p.fp_fma[w], p.fp_fma_lat, n, True)
        E += _arith(["vdivpd", "vdivps"], w, p.fp_div_port, p.div_lat[w], n, True,
                    divider=p.div_cycles[w])
        E += _arith(["vsqrtpd", "vsqrtps"], w, p.fp_div_port, p.sqrt_lat[w], n, False,
                    divider=p.sqrt_cycles[w])
        bools = ["vxorpd", "vxorps", "vandpd", "vandps", "vorpd", "vorps",
                 "vandnpd", "vandnps", "vpxor", "vpand", "vpor", "vpandn"]
        if w == "z":
            bools = [b + sfx for b in bools for sfx in ("", "d", "q")] if False else bools
        E += _arith(bools, w, p.fp_bool[w], 1.0, n, True)
        vint = ["vpaddd", "vpaddq", "vpsubd", "vpsubq", "vpcmpeqd", "vpcmpeqq"]
        E += _arith(vint, w, p.vec_int[w], p.vec_int_lat, n, True)
        E += _arith(["vpmulld", "vpmuludq", "vpmuldq"], w, p.fp_mul[w], 5.0, n, True)
        # shuffles (two- and three-operand forms appear in compiler output)
        shufs2 = ["vpermilpd", "vpermilps", "vmovddup", "vmovshdup", "vmovsldup"]
        shufs3 = ["vunpckhpd", "vunpcklpd", "vunpckhps", "vunpcklps", "vshufpd", "vshufps"]
        E += _arith(shufs2, w, p.shuffle[w], p.shuffle_lat, 1, False)
        E += _arith(shufs3, w, p.shuffle[w], p.shuffle_lat, 1, True)
        E.append(InstrEntry("vshufpd", f"i,{w},{w},{w}", (uop(p.shuffle[w]),), latency=p.shuffle_lat))
        E.append(InstrEntry("vpermilpd", f"i,{w},{w}", (uop(p.shuffle[w]),), latency=p.shuffle_lat))
        E += _arith(["vblendvpd", "vblendvps"], w, p.fp_bool[w], 2.0, n, True)
        E.append(InstrEntry("vcmppd", f"i,{w},{w},{w}", (uop(p.fp_add[w]),), latency=p.fp_cmp_lat))

    # SSE two-operand legacy forms (xmm only)
    E += _arith(ADD_LIKE, "x", p.fp_add["x"], p.fp_add_lat, 1, False)
    E += _arith(MUL_LIKE, "x", p.fp_mul["x"], p.fp_mul_lat, 1, False)
    E += _arith(["divpd", "divps"], "x", p.fp_div_port, p.div_lat["x"], 1, False,
                divider=p.div_cycles["x"])
    E += _arith(["sqrtpd", "sqrtps"], "x", p.fp_div_port, p.sqrt_lat["x"], 1, False,
                divider=p.sqrt_cycles["x"])
    E += _arith(["xorpd", "xorps", "andpd", "andps", "orpd", "orps", "pxor",
                 "pand", "por", "pandn"], "x", p.fp_bool["x"], 1.0, 1, False)
    E += _arith(["paddd", "paddq", "psubd", "psubq"], "x", p.vec_int["x"],
                p.vec_int_lat, 1, False)
    E += _arith(["unpckhpd", "unpcklpd", "shufpd", "movddup"], "x", p.shuffle["x"],
                p.shuffle_lat, 1, False)
    E.append(InstrEntry("shufpd", "i,x,x", (uop(p.shuffle["x"]),), latency=p.shuffle_lat))
    E += _arith(["haddpd", "haddps"], "x", p.shuffle["x"], 6.0, 3, False)
    E += _arith(["vhaddpd", "vhaddps"], "x", p.shuffle["x"], 6.0, 3, True)

    # scalar forms (both SSE 2-op and AVX 3-op)
    for three in (False, True):
        pre = "v" if three else ""
        E += _arith([pre + m for m in ADD_LIKE_S], "x", p.fp_add["x"],
                    p.fp_add_lat_scalar, 1, three)
        E += _arith([pre + m for m in MUL_LIKE_S], "x", p.fp_mul["x"],
                    p.fp_mul_lat_scalar, 1, three)
        E += _arith([pre + "divsd", pre + "divss"], "x", p.fp_div_port,
                    p.div_lat["s"], 1, three, divider=p.div_cycles["s"])
        E += _arith([pre + "sqrtsd", pre + "sqrtss"], "x", p.fp_div_port,
                    p.sqrt_lat["s"], 1, three, divider=p.sqrt_cycles["s"])
    fma_s = [
        f"vf{k}{o}{t}"
        for k in ("madd", "msub", "nmadd", "nmsub")
        for o in ("132", "213", "231")
        for t in ("sd", "ss")
    ]
    E += _arith(fma_s, "x", p.fp_fma["x"], p.fp_fma_lat_scalar, 1, True)

    # FP compares to flags
    for m in ("ucomisd", "ucomiss", "comisd", "comiss",
              "vucomisd", "vucomiss", "vcomisd", "vcomiss"):
        E.append(InstrEntry(m, "x,x", (uop(p.fp_add["x"]),), latency=p.fp_cmp_lat))

    # conversions
    cvt_like = ["cvtsi2sd", "cvtsi2ss", "vcvtsi2sd", "vcvtsi2ss",
                "cvtsi2sdq", "vcvtsi2sdq", "cvtsi2sdl", "vcvtsi2sdl"]
    for m in cvt_like:
        E.append(InstrEntry(m, "r,x", (uop(p.transfer), uop(p.cvt["x"])),
                            latency=p.cvt_lat + p.transfer_lat))
        E.append(InstrEntry(m, "r,x,x", (uop(p.transfer), uop(p.cvt["x"])),
                            latency=p.cvt_lat + p.transfer_lat))
    for m in ("cvttsd2si", "cvttss2si", "vcvttsd2si", "cvtsd2si", "vcvtsd2si"):
        E.append(InstrEntry(m, "x,r", (uop(p.cvt["x"]), uop(p.transfer)),
                            latency=p.cvt_lat + p.transfer_lat))
    for m in ("cvtsd2ss", "cvtss2sd", "vcvtsd2ss", "vcvtss2sd"):
        E.append(InstrEntry(m, "*", (uop(p.cvt["x"]),), latency=p.cvt_lat))
    for w in widths:
        for m in ("vcvtdq2pd", "vcvtpd2dq", "vcvttpd2dq", "vcvtps2pd", "vcvtpd2ps",
                  "vcvtdq2ps", "vcvtqq2pd", "vcvtpd2qq"):
            E.append(InstrEntry(m, f"{w},{w}", (uop(p.cvt[w]),), latency=p.cvt_lat))
            if w != "z":
                nxt = widths[min(widths.index(w) + 1, len(widths) - 1)]
                E.append(InstrEntry(m, f"{w},{nxt}", (uop(p.cvt[nxt]),), latency=p.cvt_lat))
                E.append(InstrEntry(m, f"{nxt},{w}", (uop(p.cvt[nxt]),), latency=p.cvt_lat))

    # register transfers
    for m in ("movq", "movd", "vmovq", "vmovd"):
        E.append(InstrEntry(m, "x,r", (uop(p.transfer),), latency=p.transfer_lat))
        E.append(InstrEntry(m, "r,x", (uop(p.transfer),), latency=p.transfer_lat))

    # -- moves, loads, stores -------------------------------------------------
    vec_movs = ["movapd", "movaps", "movupd", "movups", "movdqa", "movdqu",
                "vmovapd", "vmovaps", "vmovupd", "vmovups", "vmovdqa", "vmovdqu",
                "vmovdqa64", "vmovdqu64", "vmovdqa32", "vmovdqu32"]
    for m in vec_movs:
        for w in widths:
            E.append(InstrEntry(m, f"{w},{w}", (), latency=0.0, notes="move elimination"))
            E.append(InstrEntry(m, f"m,{w}", (), latency=0.0, notes="pure load"))
            E.append(InstrEntry(m, f"{w},m", (), latency=1.0, notes="pure store"))
    for m in ("movsd", "movss", "vmovsd", "vmovss", "movlpd", "movhpd",
              "vmovlpd", "vmovhpd", "movq", "movd", "vmovq", "vmovd"):
        E.append(InstrEntry(m, "m,x", (), latency=0.0, notes="pure load"))
        E.append(InstrEntry(m, "x,m", (), latency=1.0, notes="pure store"))
    for m in ("movsd", "movss", "vmovsd", "vmovss"):
        E.append(InstrEntry(m, "x,x", (uop(p.shuffle["x"]),), latency=1.0,
                            notes="merging move"))
        E.append(InstrEntry(m, "x,x,x", (uop(p.shuffle["x"]),), latency=1.0))
    # NT stores
    for m in ("vmovntpd", "vmovntps", "movntpd", "movntps", "movntdq", "vmovntdq"):
        for w in widths:
            E.append(InstrEntry(m, f"{w},m", (), latency=1.0, notes="NT store"))

    # broadcasts
    for m in ("vbroadcastsd", "vbroadcastss", "vpbroadcastq", "vpbroadcastd"):
        for w in ("y", "z") if p.has_avx512 else ("y",):
            E.append(InstrEntry(m, f"x,{w}", (uop(p.shuffle[w]),), latency=p.shuffle_lat + 2))
            E.append(InstrEntry(m, f"m,{w}", (), latency=0.0, notes="bcast load (fused)"))
        E.append(InstrEntry(m, "x,x", (uop(p.shuffle["x"]),), latency=p.shuffle_lat))
        E.append(InstrEntry(m, "m,x", (), latency=0.0, notes="bcast load (fused)"))
    for m in ("vbroadcastf128", "vbroadcastf64x4"):
        E.append(InstrEntry(m, "*", (), latency=0.0, notes="bcast load (fused)"))

    # cross-lane shuffles / insert / extract
    for w in ("y", "z") if p.has_avx512 else ("y",):
        for m in ("vperm2f128", "vpermpd", "vpermq", "vpermd", "vperm2i128"):
            for sig in (f"i,{w},{w}", f"i,{w},{w},{w}", f"{w},{w},{w}"):
                E.append(InstrEntry(m, sig, (uop(p.cross_lane[w]),),
                                    latency=p.cross_lane_lat))
        E.append(InstrEntry("vextractf128", f"i,{w},x", (uop(p.cross_lane[w]),),
                            latency=p.cross_lane_lat))
        E.append(InstrEntry("vinsertf128", f"i,x,{w},{w}", (uop(p.cross_lane[w]),),
                            latency=p.cross_lane_lat))
        E.append(InstrEntry("vextractf64x4", f"i,{w},y", (uop(p.cross_lane[w]),),
                            latency=p.cross_lane_lat))
        E.append(InstrEntry("vinsertf64x4", f"i,y,{w},{w}", (uop(p.cross_lane[w]),),
                            latency=p.cross_lane_lat))
    E.append(InstrEntry("vextractf128", "i,y,m", (uop(p.cross_lane["y"]),), latency=1.0))
    E.append(InstrEntry("vzeroupper", "*", (), latency=0.0))

    # gathers (EVEX masked and AVX2 forms)
    for m in ("vgatherdpd", "vgatherqpd"):
        for w in widths:
            tput, lat = p.gather[w]
            extra = (uop(p.gather_extra_ports), uop(p.gather_extra_ports))
            E.append(InstrEntry(m, f"g,{w}", extra, latency=lat, throughput=tput,
                                notes="gather"))
            E.append(InstrEntry(m, f"{w},g,{w}", extra, latency=lat, throughput=tput,
                                notes="gather (AVX2 form)"))

    # -- BMI / bit manipulation ------------------------------------------------
    for m in ("popcnt", "lzcnt", "tzcnt"):
        E.append(InstrEntry(m, "r,r", (uop(p.imul),), latency=3.0))
        E.append(InstrEntry(m, "m,r", (uop(p.imul),), latency=3.0))
    for m in ("andn", "bextr", "bzhi"):
        E.append(InstrEntry(m, "r,r,r", alu, latency=1.0))
    for m in ("blsi", "blsr", "blsmsk"):
        E.append(InstrEntry(m, "r,r", alu, latency=1.0))
    for m in ("shlx", "shrx", "sarx"):
        E.append(InstrEntry(m, "r,r,r", (uop(p.shift),), latency=1.0))
    E.append(InstrEntry("rorx", "i,r,r", (uop(p.shift),), latency=1.0))
    E.append(InstrEntry("mulx", "r,r,r", (uop(p.imul),), latency=p.imul_lat + 1))
    for m in ("adcx", "adox"):
        E.append(InstrEntry(m, "r,r", alu, latency=1.0))
    E.append(InstrEntry("bswap", "r", (uop(p.shift),), latency=1.0))
    for m in ("bt", "bts", "btr", "btc"):
        E.append(InstrEntry(m, "r,r", alu, latency=1.0))
        E.append(InstrEntry(m, "i,r", alu, latency=1.0))
    for m in ("bsf", "bsr"):
        E.append(InstrEntry(m, "r,r", (uop(p.imul),), latency=3.0))
    E.append(InstrEntry("xchg", "r,r", (uop(p.alu), uop(p.alu), uop(p.alu)),
                        latency=2.0))

    # -- approximations and rounding -------------------------------------------
    for w in widths:
        n = p.uops_per_op.get(w, 1)
        E += _arith(["vrcpps", "vrsqrtps", "vrcp14pd", "vrcp14ps",
                     "vrsqrt14pd", "vrsqrt14ps"], w, p.fp_mul[w], 4.0, n, False)
        E += _arith(["vroundpd", "vroundps", "vrndscalepd", "vrndscaleps"],
                    w, p.fp_add[w], 8.0, n, False)
        E.append(InstrEntry("vroundpd", f"i,{w},{w}", (uop(p.fp_add[w]),), latency=8.0))
        E.append(InstrEntry("vrndscalepd", f"i,{w},{w}", (uop(p.fp_add[w]),), latency=8.0))
        E += _arith(["vgetexppd", "vgetmantpd", "vreducepd"], w, p.fp_mul[w],
                    4.0, n, False)
    for m in ("vroundsd", "vroundss", "roundsd", "roundss"):
        E.append(InstrEntry(m, "*", (uop(p.fp_add["x"]),), latency=8.0))
    E.append(InstrEntry("vrcpss", "*", (uop(p.fp_mul["x"]),), latency=4.0))
    E.append(InstrEntry("vrsqrtss", "*", (uop(p.fp_mul["x"]),), latency=4.0))

    # -- integer vector extensions ----------------------------------------------
    for w in widths:
        n = p.uops_per_op.get(w, 1)
        E += _arith(["vpminsd", "vpmaxsd", "vpminud", "vpmaxud", "vpabsd",
                     "vpabsq", "vpsignd"], w, p.vec_int[w], p.vec_int_lat, n, True)
        E += _arith(["vpsllq", "vpsrlq", "vpslld", "vpsrld", "vpsraq", "vpsrad"],
                    w, p.shuffle[w], 1.0, n, True)
        for m in ("vpsllq", "vpsrlq", "vpslld", "vpsrld"):
            E.append(InstrEntry(m, f"i,{w},{w}", (uop(p.shuffle[w]),), latency=1.0))
        E += _arith(["vpackssdw", "vpackusdw", "vpshufb", "vpalignr"],
                    w, p.shuffle[w], p.shuffle_lat, n, True)
        E += _arith(["vpaddw", "vpaddb", "vpsubw", "vpsubb", "vpavgb", "vpavgw"],
                    w, p.vec_int[w], p.vec_int_lat, n, True)
        for m in ("vpmovzxdq", "vpmovsxdq", "vpmovzxwd", "vpmovsxwd",
                  "vpmovzxbw", "vpmovsxbw"):
            E.append(InstrEntry(m, f"x,{w}", (uop(p.shuffle[w]),), latency=3.0))
            E.append(InstrEntry(m, f"{w},{w}", (uop(p.shuffle[w]),), latency=3.0))
        E += _arith(["vpblendd", "vblendpd", "vblendps"], w, p.fp_bool[w], 1.0, n, True)
        E.append(InstrEntry("vpblendd", f"i,{w},{w},{w}", (uop(p.fp_bool[w]),), latency=1.0))
        E.append(InstrEntry("vblendpd", f"i,{w},{w},{w}", (uop(p.fp_bool[w]),), latency=1.0))
        E += _arith(["vphaddd", "vphsubd"], w, p.shuffle[w], 3.0, 3, True)
        E += _arith(["vpmaddwd", "vpmaddubsw"], w, p.fp_mul[w], 5.0, n, True)

    # -- AVX-512-only data movement ----------------------------------------------
    if p.has_avx512:
        for w in ("y", "z"):
            for m in ("vpermt2pd", "vpermi2pd", "vpermt2d", "vpermi2d",
                      "vpermpd", "vpermps"):
                E.append(InstrEntry(m, f"{w},{w},{w}", (uop(p.cross_lane[w]),),
                                    latency=p.cross_lane_lat))
            for m in ("vcompresspd", "vcompressps", "vexpandpd", "vexpandps"):
                E.append(InstrEntry(m, f"{w},{w}", (uop(p.cross_lane[w]), uop(p.shuffle[w])),
                                    latency=p.cross_lane_lat + 1))
            E.append(InstrEntry("vplzcntd", f"{w},{w}", (uop(p.vec_int[w]),), latency=4.0))
            E.append(InstrEntry("vpconflictd", f"{w},{w}", (uop(p.cross_lane[w]),),
                                latency=p.cross_lane_lat + 9))
            E.append(InstrEntry("vpternlogd", f"i,{w},{w},{w}", (uop(p.fp_bool[w]),),
                                latency=1.0))
            E.append(InstrEntry("vpternlogq", f"i,{w},{w},{w}", (uop(p.fp_bool[w]),),
                                latency=1.0))
        # scatter stores (vector-indexed memory destination)
        for m in ("vscatterdpd", "vscatterqpd"):
            for w in widths:
                tput, lat = p.gather[w]
                E.append(InstrEntry(m, f"{w},g", (uop(p.gather_extra_ports),),
                                    latency=lat, throughput=tput * 2,
                                    notes="scatter"))
        for m in ("vmovdqu8", "vmovdqu16"):
            for w in widths:
                E.append(InstrEntry(m, f"{w},{w}", (), latency=0.0,
                                    notes="move elimination"))
                E.append(InstrEntry(m, f"m,{w}", (), latency=0.0, notes="pure load"))
                E.append(InstrEntry(m, f"{w},m", (), latency=1.0, notes="pure store"))
        E.append(InstrEntry("vbroadcasti128", "*", (), latency=0.0,
                            notes="bcast load (fused)"))
        E.append(InstrEntry("vbroadcasti64x4", "*", (), latency=0.0,
                            notes="bcast load (fused)"))

    # -- AVX-512 mask ops
    if p.has_avx512 and p.mask_ports:
        for m in ("kmovb", "kmovw", "kmovd", "kmovq"):
            E.append(InstrEntry(m, "k,k", (uop(p.mask_ports),), latency=p.mask_lat))
            E.append(InstrEntry(m, "r,k", (uop(p.transfer),), latency=p.transfer_lat))
            E.append(InstrEntry(m, "k,r", (uop(p.transfer),), latency=p.transfer_lat))
        for m in ("kandw", "korw", "kxorw", "kandnw", "knotw", "kxnorw",
                  "kandq", "korq", "kxorq", "kxnorq", "kaddw", "kaddq",
                  "kunpckbw", "kunpckwd", "kunpckdq"):
            E.append(InstrEntry(m, "*", (uop(p.mask_ports),), latency=p.mask_lat))
        for m in ("kortestw", "kortestq", "ktestw", "ktestq"):
            E.append(InstrEntry(m, "k,k", (uop(p.mask_ports),), latency=p.mask_lat))
        for m in ("kshiftlw", "kshiftrw", "kshiftlq", "kshiftrq"):
            E.append(InstrEntry(m, "i,k,k", (uop(p.mask_ports),), latency=p.mask_lat + 2))
        for w in widths:
            E.append(InstrEntry("vcmppd", f"i,{w},{w},k", (uop(p.fp_add[w]),),
                                latency=p.fp_cmp_lat))
            E.append(InstrEntry("vpcmpgtq", f"{w},{w},k", (uop(p.fp_add[w]),),
                                latency=p.fp_cmp_lat))

    return E
