"""Dependency analysis: RAW chains, critical path, loop-carried cycles.

The block under analysis is the body of an innermost loop, executed many
times.  Out-of-order hardware renames away WAR/WAW hazards, so only true
(read-after-write) dependencies matter:

* **register RAW** — a consumer reading root register ``R`` depends on
  the most recent program-order producer of ``R``; if none precedes it
  in the block, the *last* producer of ``R`` in the block feeds it from
  the **previous iteration** (a cross-iteration edge).
* **memory RAW** — a load whose address expression *textually matches*
  an earlier store's (same base/index/scale/displacement roots) depends
  on that store (store-to-load forwarding).  Matching is exact, which is
  the right conservatism for compiler-generated streaming kernels where
  aliasing loads use distinct displacements.

Edge weight is the producer's result latency (including load-to-use
latency for loads).  Two metrics are derived:

* **critical path (CP)** — longest node-weighted path through one
  iteration, a latency bound for straight-line execution;
* **loop-carried dependency (LCD)** — the heaviest dependency *cycle*
  crossing the iteration boundary; at steady state, one iteration
  cannot take fewer cycles than the heaviest cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import networkx as nx

from ..isa.idioms import is_zero_idiom
from ..isa.instruction import Instruction, OperandAccess
from ..isa.operands import MemoryOperand, Register
from ..machine.model import MachineModel, ResolvedInstruction


def _memory_key(op: MemoryOperand) -> tuple:
    """Structural identity of an address expression."""
    return (
        op.base.root if op.base else None,
        op.index.root if op.index else None,
        op.scale,
        op.displacement,
    )


@dataclass
class DepEdge:
    src: int
    dst: int
    latency: float
    kind: str  #: "reg" | "mem" | "reg-carried" | "mem-carried"
    resource: str  #: register root or memory key string


@dataclass
class DependencyGraph:
    """Dependency structure of one loop-body iteration."""

    instructions: Sequence[Instruction]
    resolved: Sequence[ResolvedInstruction]
    edges: list[DepEdge] = field(default_factory=list)

    # ------------------------------------------------------------------

    def intra_graph(self) -> nx.DiGraph:
        g = nx.DiGraph()
        g.add_nodes_from(range(len(self.instructions)))
        for e in self.edges:
            if e.kind in ("reg", "mem"):
                # Keep the heaviest edge between any node pair.
                if g.has_edge(e.src, e.dst):
                    if g[e.src][e.dst]["latency"] >= e.latency:
                        continue
                g.add_edge(e.src, e.dst, latency=e.latency, kind=e.kind)
        return g

    def carried_edges(self) -> list[DepEdge]:
        return [e for e in self.edges if e.kind.endswith("carried")]

    # ------------------------------------------------------------------

    def critical_path(self) -> float:
        """Longest latency chain through one iteration (cycles)."""
        g = self.intra_graph()
        # Node-weighted longest path: dp[j] = max over preds of
        # dp[i] + edge latency, plus the node's own latency at the end.
        dp = {n: 0.0 for n in g.nodes}
        for n in nx.topological_sort(g):
            for _, m, data in g.out_edges(n, data=True):
                dp[m] = max(dp[m], dp[n] + data["latency"])
        if not dp:
            return 0.0
        # Add the terminal node's latency so a single long-latency
        # instruction shows its full cost.
        return max(
            dp[n] + self.resolved[n].total_latency for n in g.nodes
        ) if g.nodes else 0.0

    def loop_carried_dependency(self) -> tuple[float, list[int]]:
        """Heaviest dependency cycle per iteration.

        Returns ``(cycles, node_chain)`` where ``node_chain`` is the
        intra-iteration path of the heaviest cycle (empty if none).
        """
        g = self.intra_graph()
        # Longest path between all pairs in the DAG via DP per source.
        order = list(nx.topological_sort(g))
        best = 0.0
        best_chain: list[int] = []
        carried = self.carried_edges()
        if not carried:
            return 0.0, []
        # Longest path dst -> src for each carried edge (src written this
        # iteration, consumed by dst next iteration).
        for e in carried:
            start, end = e.dst, e.src
            if start == end:
                total = e.latency
                if total > best:
                    best, best_chain = total, [end]
                continue
            dist = {n: float("-inf") for n in g.nodes}
            prev: dict[int, Optional[int]] = {n: None for n in g.nodes}
            dist[start] = 0.0
            for n in order:
                if dist[n] == float("-inf"):
                    continue
                for _, m, data in g.out_edges(n, data=True):
                    cand = dist[n] + data["latency"]
                    if cand > dist[m]:
                        dist[m] = cand
                        prev[m] = n
            if dist[end] == float("-inf"):
                continue
            total = dist[end] + e.latency
            if total > best:
                best = total
                chain = [end]
                while prev[chain[-1]] is not None:
                    chain.append(prev[chain[-1]])  # type: ignore[arg-type]
                best_chain = list(reversed(chain))
        return best, best_chain


def _merge_only_reads(ins: Instruction) -> set[str]:
    """Destination roots read *only* through a merging predicate.

    For ``mov z5.d, p1/m, z1.d`` the old value of ``z5`` is read purely
    to merge inactive lanes — with an all-true predicate the renamer can
    satisfy it without waiting.  For a true accumulation like
    ``fadd z8.d, p0/m, z8.d, z0.d`` the destination also appears as an
    explicit source and the dependency is real.
    """
    from ..isa.instruction import OperandAccess

    if ins.isa != "aarch64":
        return set()
    merging = any(
        isinstance(o, Register) and o.predication == "m" for o in ins.operands
    )
    if not merging:
        return set()
    dest_roots = set()
    source_roots = set()
    for k, (o, a) in enumerate(zip(ins.operands, ins.accesses)):
        if not isinstance(o, Register):
            continue
        if a & OperandAccess.WRITE:
            dest_roots.add(o.root)
        if (a & OperandAccess.READ) and not (a & OperandAccess.WRITE):
            source_roots.add(o.root)
    return dest_roots - source_roots


def build_dependency_graph(
    instructions: Sequence[Instruction],
    resolved: Sequence[ResolvedInstruction],
    *,
    respect_merge_dependency: bool = True,
) -> DependencyGraph:
    """Construct the dependency graph of a loop body.

    ``respect_merge_dependency=False`` drops read-modify-write
    dependencies on *merging-predicated SVE destinations* — hardware with
    sufficiently aggressive renaming (the paper observes this on
    Neoverse V2 for the Gauss-Seidel kernel) can overcome them when the
    predicate is all-true; the static model keeps them by default.
    """
    n = len(instructions)
    edges: list[DepEdge] = []

    # Track last writer per register root and per memory key.
    last_reg_writer: dict[str, int] = {}
    last_mem_writer: dict[tuple, int] = {}

    # Registers written anywhere in the block (loop-variant): a memory
    # operand whose address uses one advances every iteration, so its
    # key aliases only *within* an iteration, never across (the
    # in-place UPDATE kernel must not chain on its own store).
    variant_regs: set[str] = set()
    for ins in instructions:
        variant_regs.update(ins.register_writes())

    def _loop_variant(op: MemoryOperand) -> bool:
        return any(r.root in variant_regs for r in op.address_registers())

    def producer_latency(i: int) -> float:
        return resolved[i].total_latency

    # First pass: record final writers for cross-iteration edges.
    final_reg_writer: dict[str, int] = {}
    final_mem_writer: dict[tuple, int] = {}
    for i, ins in enumerate(instructions):
        if is_zero_idiom(ins):
            continue
        for root in ins.register_writes():
            final_reg_writer[root] = i
        for op, acc in zip(ins.operands, ins.accesses):
            if isinstance(op, MemoryOperand) and (acc & OperandAccess.WRITE):
                final_mem_writer[_memory_key(op)] = i

    def reads_of(ins: Instruction, i: int) -> list[str]:
        reads = list(ins.register_reads())
        if not respect_merge_dependency and ins.isa == "aarch64":
            # Drop the RMW dependency a merging predicate adds to the
            # destination — but only when the destination is *not* also
            # an explicit source (true accumulations must keep their
            # chain; only the implicit merge-read is renameable).
            reads = [r for r in reads if r not in _merge_only_reads(ins)]
        return reads

    for i, ins in enumerate(instructions):
        zero = is_zero_idiom(ins)
        # -- register reads
        if not zero:
            for root in reads_of(ins, i):
                if root in last_reg_writer:
                    src = last_reg_writer[root]
                    edges.append(
                        DepEdge(src, i, producer_latency(src), "reg", root)
                    )
                elif root in final_reg_writer and final_reg_writer[root] >= i:
                    src = final_reg_writer[root]
                    edges.append(
                        DepEdge(src, i, producer_latency(src), "reg-carried", root)
                    )
            # -- memory reads (store-to-load forwarding)
            for op, acc in zip(ins.operands, ins.accesses):
                if isinstance(op, MemoryOperand) and (acc & OperandAccess.READ):
                    key = _memory_key(op)
                    if key in last_mem_writer:
                        src = last_mem_writer[key]
                        edges.append(
                            DepEdge(src, i, producer_latency(src), "mem", str(key))
                        )
                    elif (
                        key in final_mem_writer
                        and final_mem_writer[key] >= i
                        and not _loop_variant(op)
                    ):
                        src = final_mem_writer[key]
                        edges.append(
                            DepEdge(
                                src, i, producer_latency(src), "mem-carried", str(key)
                            )
                        )

        # -- update writers
        for root in ins.register_writes():
            last_reg_writer[root] = i
        for op, acc in zip(ins.operands, ins.accesses):
            if isinstance(op, MemoryOperand) and (acc & OperandAccess.WRITE):
                last_mem_writer[_memory_key(op)] = i

    return DependencyGraph(instructions=instructions, resolved=resolved, edges=edges)
