"""µop → port assignment.

The throughput bound of a loop body is the highest per-port occupancy
achievable by the *best possible* schedule.  Two assignment strategies
are provided:

* :func:`assign_ports_heuristic` — the OSACA default: every µop spreads
  its occupancy equally over all candidate ports.  Fast, and exact
  whenever candidate sets are nested or disjoint (the common case).
* :func:`assign_ports_optimal` — exact minimax assignment via linear
  programming (``scipy.optimize.linprog``): minimize the maximum port
  load subject to each µop distributing its full occupancy over its
  candidate ports.  This is the true lower bound the hardware scheduler
  is measured against.

Both return a :class:`PortPressure` with per-port totals and the
per-instruction breakdown used in reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
from scipy.optimize import linprog

from ..machine.model import MachineModel, ResolvedInstruction


@dataclass
class PortPressure:
    """Result of a port-assignment pass."""

    ports: tuple[str, ...]
    #: total occupancy per port (cycles per iteration)
    totals: dict[str, float]
    #: per-instruction, per-port occupancy: one dict per instruction
    per_instruction: list[dict[str, float]]
    method: str = "heuristic"

    @property
    def bottleneck_port(self) -> str:
        return max(self.totals, key=lambda p: self.totals[p]) if self.totals else ""

    @property
    def max_pressure(self) -> float:
        return max(self.totals.values()) if self.totals else 0.0


def _collect_uops(
    resolved: Sequence[ResolvedInstruction],
) -> list[tuple[int, tuple[str, ...], float]]:
    """Flatten instructions into (instruction_index, ports, cycles)."""
    out = []
    for i, r in enumerate(resolved):
        for u in r.uops:
            out.append((i, u.ports, u.cycles))
    return out


def assign_ports_heuristic(
    model: MachineModel, resolved: Sequence[ResolvedInstruction]
) -> PortPressure:
    """Equal-split assignment (OSACA's default scheme)."""
    totals = {p: 0.0 for p in model.ports}
    per_instr = [dict() for _ in resolved]  # type: list[dict[str, float]]
    for i, ports, cycles in _collect_uops(resolved):
        share = cycles / len(ports)
        for p in ports:
            totals[p] += share
            per_instr[i][p] = per_instr[i].get(p, 0.0) + share
    return PortPressure(
        ports=model.ports, totals=totals, per_instruction=per_instr,
        method="heuristic",
    )


def assign_ports_optimal(
    model: MachineModel, resolved: Sequence[ResolvedInstruction]
) -> PortPressure:
    """Exact minimax port binding via linear programming.

    Variables: ``x[u,p]`` = cycles of µop *u* executed on port *p*, plus
    the bound ``T``.  Minimize ``T`` subject to

    * ``sum_p x[u,p] = cycles(u)`` for every µop,
    * ``sum_u x[u,p] - T <= 0`` for every port,
    * ``x >= 0``.

    Falls back to the heuristic if the LP is degenerate (no µops).
    """
    uops = _collect_uops(resolved)
    if not uops:
        return PortPressure(
            ports=model.ports,
            totals={p: 0.0 for p in model.ports},
            per_instruction=[dict() for _ in resolved],
            method="optimal",
        )

    port_index = {p: k for k, p in enumerate(model.ports)}
    n_ports = len(model.ports)

    # Variable layout: one x per (uop, candidate port), then T last.
    var_of: list[tuple[int, int]] = []  # (uop_id, port_id)
    offsets: list[list[int]] = []
    for u_id, (_, ports, _) in enumerate(uops):
        offs = []
        for p in ports:
            offs.append(len(var_of))
            var_of.append((u_id, port_index[p]))
        offsets.append(offs)
    n_x = len(var_of)
    n_vars = n_x + 1  # + T

    c = np.zeros(n_vars)
    c[-1] = 1.0

    # Equality: each uop's occupancy fully distributed.
    a_eq = np.zeros((len(uops), n_vars))
    b_eq = np.zeros(len(uops))
    for u_id, (_, _, cycles) in enumerate(uops):
        for v in offsets[u_id]:
            a_eq[u_id, v] = 1.0
        b_eq[u_id] = cycles

    # Inequality: per-port load <= T.
    a_ub = np.zeros((n_ports, n_vars))
    for v, (_, p_id) in enumerate(var_of):
        a_ub[p_id, v] = 1.0
    a_ub[:, -1] = -1.0
    b_ub = np.zeros(n_ports)

    res = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(0, None)] * n_vars,
        method="highs",
    )
    if not res.success:  # pragma: no cover - defensive
        return assign_ports_heuristic(model, resolved)

    totals = {p: 0.0 for p in model.ports}
    per_instr = [dict() for _ in resolved]  # type: list[dict[str, float]]
    x = res.x
    for v, (u_id, p_id) in enumerate(var_of):
        load = float(x[v])
        if load <= 1e-12:
            continue
        port = model.ports[p_id]
        instr_idx = uops[u_id][0]
        totals[port] += load
        per_instr[instr_idx][port] = per_instr[instr_idx].get(port, 0.0) + load
    return PortPressure(
        ports=model.ports, totals=totals, per_instruction=per_instr,
        method="optimal",
    )
