"""Block throughput prediction — the OSACA-style lower bound.

For a loop body the predicted cycles per iteration is

.. math::

    T = \\max(T_{ports}, T_{div}, T_{special}, T_{front}, T_{LCD})

where

* ``T_ports`` — the minimax port binding (see
  :mod:`~repro.analysis.portbinding`),
* ``T_div`` — accumulated occupancy of the non-pipelined divide/sqrt
  unit,
* ``T_special`` — explicit reciprocal-throughput caps (gathers,
  horizontal reductions) summed per mnemonic class,
* ``T_front`` — µop count divided by the dispatch width,
* ``T_LCD`` — the heaviest loop-carried dependency cycle.

All components are kept in the result so reports and experiments can
attribute the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..isa.instruction import Instruction
from ..machine import MachineModel
from ..machine.model import ResolvedInstruction
from .depgraph import DependencyGraph, build_dependency_graph
from .portbinding import (
    PortPressure,
    assign_ports_heuristic,
    assign_ports_optimal,
)


def _fused_domain_uops(instructions: Sequence[Instruction]) -> float:
    """Frontend slots per iteration in the fused domain.

    x86 decoders micro-fuse memory operands into their consuming µop and
    macro-fuse ``cmp``/``test`` (and flag-setting ALU ops) with a
    directly following conditional jump; AArch64 dispatches one µop per
    instruction for this vocabulary.  Counting fused-domain slots keeps
    the frontend component a true lower bound.
    """
    n = 0.0
    skip_next_fuse = False
    for i, ins in enumerate(instructions):
        if skip_next_fuse:
            skip_next_fuse = False
            continue
        if (
            ins.isa in ("x86", "x86_64")
            and ins.mnemonic.rstrip("bwlq") in ("cmp", "test", "add", "sub", "and", "inc", "dec")
            and i + 1 < len(instructions)
            and instructions[i + 1].is_branch
            and instructions[i + 1].mnemonic != "jmp"
        ):
            skip_next_fuse = True  # macro-fused pair: one slot
        n += 1
    return n


@dataclass
class AnalysisResult:
    """Outcome of a static kernel analysis."""

    model_name: str
    instructions: Sequence[Instruction]
    resolved: Sequence[ResolvedInstruction]
    pressure: PortPressure
    depgraph: DependencyGraph

    block_throughput: float  #: T_ports — minimax port pressure
    divider_cycles: float  #: T_div
    special_cycles: float  #: T_special (explicit throughput caps)
    frontend_cycles: float  #: T_front
    critical_path: float  #: CP of one iteration
    lcd: float  #: heaviest loop-carried cycle
    lcd_chain: list[int] = field(default_factory=list)

    @property
    def throughput_bound(self) -> float:
        """Steady-state resource bound, ignoring dependencies."""
        return max(
            self.block_throughput,
            self.divider_cycles,
            self.special_cycles,
            self.frontend_cycles,
        )

    @property
    def prediction(self) -> float:
        """Predicted cycles per loop iteration (lower bound)."""
        return max(self.throughput_bound, self.lcd)

    @property
    def bottleneck(self) -> str:
        """Human-readable dominant constraint."""
        candidates = {
            "port pressure": self.block_throughput,
            "divider": self.divider_cycles,
            "serialized op": self.special_cycles,
            "frontend": self.frontend_cycles,
            "loop-carried dependency": self.lcd,
        }
        return max(candidates, key=lambda k: candidates[k])

    def report(self, **kwargs) -> str:
        from .report import render_report

        return render_report(self, **kwargs)


def analyze_instructions(
    instructions: Sequence[Instruction],
    model: MachineModel,
    *,
    optimal_binding: bool = True,
    respect_merge_dependency: bool = True,
    resolved: Optional[Sequence[ResolvedInstruction]] = None,
) -> AnalysisResult:
    """Analyze a parsed loop body against a machine model.

    ``resolved`` accepts pre-resolved instructions (from a
    :class:`~repro.lowering.LoweredBlock`) so callers that already ran
    the lowering pipeline never resolve twice.
    """
    resolved = (
        [model.resolve(i) for i in instructions]
        if resolved is None
        else list(resolved)
    )

    pressure = (
        assign_ports_optimal(model, resolved)
        if optimal_binding
        else assign_ports_heuristic(model, resolved)
    )

    divider = sum(r.divider for r in resolved)
    special: dict[str, float] = {}
    for r in resolved:
        if r.throughput is not None:
            key = r.instruction.mnemonic
            special[key] = special.get(key, 0.0) + r.throughput
    special_cycles = max(special.values()) if special else 0.0

    frontend = _fused_domain_uops(instructions) / model.dispatch_width

    graph = build_dependency_graph(
        instructions, resolved, respect_merge_dependency=respect_merge_dependency
    )
    lcd, chain = graph.loop_carried_dependency()
    cp = graph.critical_path()

    return AnalysisResult(
        model_name=model.name,
        instructions=instructions,
        resolved=resolved,
        pressure=pressure,
        depgraph=graph,
        block_throughput=pressure.max_pressure,
        divider_cycles=divider,
        special_cycles=special_cycles,
        frontend_cycles=frontend,
        critical_path=cp,
        lcd=lcd,
        lcd_chain=chain,
    )


def analyze_kernel(
    source: str,
    arch: str | MachineModel,
    *,
    optimal_binding: bool = True,
    respect_merge_dependency: bool = True,
) -> AnalysisResult:
    """Parse and analyze an assembly loop body.

    Parameters
    ----------
    source:
        Assembly text of the innermost loop body (markers and
        directives are ignored).
    arch:
        Model name/alias (``zen4``, ``spr``, ``grace`` …) or a
        :class:`MachineModel` instance.
    optimal_binding:
        Use the exact LP port binding (default) instead of the
        equal-split heuristic.
    respect_merge_dependency:
        Keep RMW dependencies on merging-predicated SVE destinations
        (the static-model default; hardware may rename them away).
    """
    from ..lowering import lower

    block = lower(source, arch)
    return analyze_instructions(
        block.instructions,
        block.model,
        optimal_binding=optimal_binding,
        respect_merge_dependency=respect_merge_dependency,
        resolved=block.resolved,
    )
