"""Port-occupation inference by instruction interleaving.

The paper (Sec. II): *"For [port occupation], it is often necessary to
interleave the instruction with known instructions to infer the
potential ports of execution."*  This module reproduces that
methodology against the simulated hardware:

1. for each port ``p``, find a **probe** — a known instruction form
   whose only candidate port is ``p`` (synthesized from the model's own
   table, exactly like picking ``shl`` for Intel's port 0/6);
2. measure a block of ``N`` probe instances alone (baseline cycles);
3. measure the same block with ``K`` instances of the *target*
   instruction interleaved;
4. if the combined block is slower than ``max(baseline, target alone)``
   would allow under disjoint ports, the target competes for ``p``.

The result is the inferred candidate-port set.  Ports that have no
single-port probe in the table are reported as ``undetermined`` rather
than guessed — the same honesty a hardware experimenter needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bench.ibench import UnbenchableEntry, synthesize_block
from ..isa import parse_kernel
from ..machine.model import InstrEntry, MachineModel
from ..simulator.core import CoreSimulator


@dataclass
class PortInferenceResult:
    mnemonic: str
    signature: str
    inferred_ports: tuple[str, ...]
    undetermined_ports: tuple[str, ...]
    true_ports: tuple[str, ...]  #: from the model (for validation)

    @property
    def correct(self) -> bool:
        """Inference is sound if it found exactly the true ports among
        the determinable ones."""
        determinable = set(self.true_ports) - set(self.undetermined_ports)
        return set(self.inferred_ports) == determinable


def _clean_sim(model: MachineModel) -> CoreSimulator:
    return CoreSimulator(
        model,
        issue_efficiency=1.0,
        dispatch_efficiency=1.0,
        measurement_overhead=0.0,
        divider_overrides={},
    )


def find_probes(model: MachineModel) -> dict[str, InstrEntry]:
    """A single-port probe entry per port, where one exists.

    Prefers single-µop, non-divider, register-only forms with low
    latency (the cleanest saturating filler).
    """
    probes: dict[str, InstrEntry] = {}
    for entry in model.entries:
        if any(ch in entry.mnemonic for ch in "*?["):
            continue
        if entry.divider or entry.throughput:
            continue
        if len(entry.uops) != 1 or len(entry.uops[0].ports) != 1:
            continue
        codes = entry.signature.split(",")
        if any(c in ("m", "g", "l", "") for c in codes):
            continue
        port = entry.uops[0].ports[0]
        current = probes.get(port)
        if current is None or entry.latency < current.latency:
            try:
                synthesize_block(model, entry, "throughput", 4)
            except UnbenchableEntry:
                continue
            probes[port] = entry
    return probes


def _block_cycles(model: MachineModel, asm: str, iterations: int = 80) -> float:
    sim = _clean_sim(model)
    return sim.run(parse_kernel(asm, model.isa), iterations=iterations,
                   warmup=25).cycles_per_iteration


def _interleave(probe_asm: str, target_asm: str) -> str:
    """Merge two loop bodies: probe lines + target lines, one loop."""
    def body(asm: str) -> list[str]:
        lines = [l for l in asm.splitlines() if l.strip()]
        # strip label and the two loop-control lines
        return lines[1:-2]

    head = probe_asm.splitlines()[0]
    tail = [l for l in probe_asm.splitlines() if l.strip()][-2:]
    merged = [head] + body(probe_asm) + body(target_asm) + tail
    return "\n".join(merged) + "\n"


def infer_ports_counters(
    model: MachineModel,
    entry: InstrEntry,
    n_target: int = 24,
    threshold: float = 0.02,
) -> PortInferenceResult:
    """Port inference via per-port µop counters.

    Intel cores expose ``UOPS_DISPATCHED.PORT_x``; with a saturating
    stream of the target instruction, every candidate port shows
    occupancy.  (On AMD and Arm such counters do not exist — use
    :func:`infer_ports_interleave` there, as the paper's authors had
    to.)
    """
    asm = synthesize_block(model, entry, "throughput", n_target)
    sim = _clean_sim(model)
    iters, warm = 80, 25
    result = sim.run(parse_kernel(asm, model.isa), iterations=iters, warmup=warm)
    # Loop control contributes at most ~2 µops/iteration spread over the
    # cheapest ports; with a saturating target stream, any candidate
    # port carries far more than that.
    loop_noise = 2.5
    per_iter = {p: result.port_busy[p] / (iters + warm) for p in model.ports}
    inferred = [p for p in model.ports if per_iter[p] > loop_noise]
    true_ports = tuple(sorted({p for u in entry.uops for p in u.ports}))
    return PortInferenceResult(
        mnemonic=entry.mnemonic,
        signature=entry.signature,
        inferred_ports=tuple(sorted(inferred)),
        undetermined_ports=(),
        true_ports=true_ports,
    )


def infer_ports_interleave(
    model: MachineModel,
    entry: InstrEntry,
    n_probe: int = 6,
    n_target: int = 24,
    slack: float = 0.35,
) -> PortInferenceResult:
    """Port inference by interleaving with single-port probes.

    The target stream is made the bottleneck (``n_target >> n_probe``).
    If the target can execute on port *p*, a co-running probe that owns
    *p* steals capacity the target cannot recover elsewhere, and the
    combined block runs measurably longer than the target alone; if the
    target never uses *p*, the probe hides entirely in the target's
    slack.
    """
    probes = find_probes(model)
    # disjoint register-pool halves prevent false dependencies between
    # the probe and target streams
    target_asm = synthesize_block(model, entry, "throughput", n_target,
                                  reg_offset=2)
    target_alone = _block_cycles(model, target_asm)

    inferred: list[str] = []
    undetermined = [p for p in model.ports if p not in probes]
    for port, probe in probes.items():
        probe_asm = synthesize_block(model, probe, "throughput", n_probe,
                                     reg_offset=1)
        probe_alone = _block_cycles(model, probe_asm)
        combined = _block_cycles(model, _interleave(probe_asm, target_asm))
        disjoint = max(probe_alone, target_alone)
        if combined > disjoint + slack:
            inferred.append(port)

    true_ports = tuple(sorted({p for u in entry.uops for p in u.ports}))
    return PortInferenceResult(
        mnemonic=entry.mnemonic,
        signature=entry.signature,
        inferred_ports=tuple(sorted(inferred)),
        undetermined_ports=tuple(sorted(undetermined)),
        true_ports=true_ports,
    )


def infer_ports(
    model: MachineModel,
    entry: InstrEntry,
    method: str = "auto",
    **kwargs,
) -> PortInferenceResult:
    """Infer candidate ports of *entry*.

    ``method="auto"`` uses per-port counters on Golden Cove (Intel
    exposes them) and interleaving elsewhere, mirroring what is possible
    on the real machines.
    """
    if method == "auto":
        method = "counters" if model.name == "golden_cove" else "interleave"
    if method == "counters":
        return infer_ports_counters(model, entry, **kwargs)
    if method == "interleave":
        return infer_ports_interleave(model, entry, **kwargs)
    raise ValueError(f"unknown method {method!r}")
