"""Node-level scaling prediction: in-core model × frequency × bandwidth.

Combines the three models the paper builds into the full-node
prediction its introduction motivates: for a kernel on ``n`` cores,

.. math::

    P(n) = \\min\\bigl(n \\cdot P_{core}(f(n)),\\; I \\cdot b(n)\\bigr)

where ``P_core`` comes from the static in-core prediction at the
frequency ``f(n)`` the governor sustains for the kernel's ISA class,
``I`` is the arithmetic intensity, and ``b(n)`` the saturating memory
bandwidth.  This is the classic Roofline-over-cores picture, with the
paper's contribution — the in-core model — supplying the compute term.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa import parse_kernel
from ..kernels.codegen import generate_assembly
from ..kernels.personas import CompilerPersona, PERSONAS
from ..kernels.suite import KernelSpec
from ..machine import get_chip_spec, get_machine_model
from ..machine.specs import ChipSpec
from ..simulator.frequency import FrequencyGovernor
from ..simulator.multicore import BandwidthModel
from .throughput import analyze_instructions

#: ISA class the generated code belongs to, per (uarch, vectorized)
_ISA_CLASS = {
    ("golden_cove", "zmm"): "avx512",
    ("golden_cove", "ymm"): "avx",
    ("golden_cove", "scalar"): "scalar",
    ("zen4", "zmm"): "avx512",
    ("zen4", "ymm"): "avx",
    ("zen4", "scalar"): "scalar",
    ("neoverse_v2", "sve"): "sve",
    ("neoverse_v2", "neon"): "neon",
    ("neoverse_v2", "scalar"): "scalar",
}


@dataclass(frozen=True)
class ScalingPoint:
    cores: int
    frequency_ghz: float
    compute_gflops: float
    bandwidth_gflops: float

    @property
    def performance_gflops(self) -> float:
        return min(self.compute_gflops, self.bandwidth_gflops)

    @property
    def bandwidth_bound(self) -> bool:
        return self.bandwidth_gflops < self.compute_gflops


@dataclass
class ScalingPrediction:
    kernel: str
    chip: str
    persona: str
    opt: str
    isa_class: str
    cycles_per_iteration: float
    elements_per_iteration: int
    points: list[ScalingPoint]

    @property
    def saturation_point(self) -> int:
        """First core count at which the kernel is bandwidth bound."""
        for p in self.points:
            if p.bandwidth_bound:
                return p.cores
        return self.points[-1].cores + 1

    def peak_gflops(self) -> float:
        return max(p.performance_gflops for p in self.points)


def _vector_style(persona: CompilerPersona, uarch: str, opt: str,
                  kernel: KernelSpec) -> str:
    cfg = persona.config(opt)
    vec = (
        cfg.vectorize
        and kernel.vectorizable
        and (not kernel.needs_fast_math or cfg.fast_math)
    )
    if not vec:
        return "scalar"
    if uarch == "neoverse_v2":
        return persona.vector_style
    return persona.width_for(uarch)


def predict_scaling(
    kernel: KernelSpec,
    chip: str | ChipSpec,
    persona: str = "gcc",
    opt: str = "O2",
    core_counts: list[int] | None = None,
) -> ScalingPrediction:
    """Predict kernel GFLOP/s across core counts on one chip."""
    spec = chip if isinstance(chip, ChipSpec) else get_chip_spec(chip)
    uarch = spec.uarch
    p = PERSONAS[persona] if isinstance(persona, str) else persona
    if uarch == "neoverse_v2" and p.isa != "aarch64":
        # map the default x86 persona to its Arm sibling
        p = PERSONAS["gcc-arm" if p.name == "gcc" else "armclang"]
    elif uarch != "neoverse_v2" and p.isa != "x86":
        p = PERSONAS["gcc" if p.name == "gcc-arm" else "clang"]

    asm = generate_assembly(kernel, p, opt, uarch)
    model = get_machine_model(uarch)
    instrs = parse_kernel(asm, model.isa)
    ana = analyze_instructions(instrs, model)

    style = _vector_style(p, uarch, opt, kernel)
    isa_class = _ISA_CLASS[(uarch, style)]
    elems = {"zmm": 8, "ymm": 4, "sve": 2, "neon": 2, "scalar": 1}[style]
    # account for unrolling: elements per iteration scale with stores/loads
    unroll = max(1, p.config(opt).unroll if style != "scalar" else 1)
    if not kernel.uses_index and not kernel.has_carried_dependency:
        elems *= unroll

    flops_iter = kernel.flops_per_element * elems
    bytes_iter = kernel.bytes_per_element * elems
    intensity = flops_iter / bytes_iter if bytes_iter else float("inf")

    gov = FrequencyGovernor.for_chip(spec)
    bw = BandwidthModel.for_chip(spec)
    domains = spec.memory.ccnuma_domains
    cpd = spec.cores // domains

    counts = core_counts or sorted(
        {1, 2, 4, 8, cpd, spec.cores // 4, spec.cores // 2, spec.cores}
    )
    points = []
    for n in counts:
        if not 1 <= n <= spec.cores:
            continue
        f = gov.sustained(n, isa_class)
        compute = n * flops_iter / ana.prediction * f
        # bandwidth across the domains the n cores span
        full, rest = divmod(n, cpd)
        total_bw = full * bw.achieved(cpd) + (bw.achieved(rest) if rest else 0.0)
        bandwidth = intensity * total_bw
        points.append(
            ScalingPoint(
                cores=n,
                frequency_ghz=f,
                compute_gflops=compute,
                bandwidth_gflops=bandwidth,
            )
        )
    return ScalingPrediction(
        kernel=kernel.name,
        chip=spec.chip,
        persona=p.name,
        opt=opt,
        isa_class=isa_class,
        cycles_per_iteration=ana.prediction,
        elements_per_iteration=elems,
        points=points,
    )
