"""Top-down cycle attribution by counterfactual simulation.

Intel's Top-down Microarchitecture Analysis answers "where did the
cycles go?" with slot-accounting counters.  With a simulator the same
question can be answered more directly: re-run the block with one
constraint idealized at a time and attribute the cycle delta to that
constraint.

Categories (mutually comparable, not additive — each delta is "cycles
recovered if only this limiter were removed"):

* ``retiring``      — the resource-bound floor (ideal everything)
* ``frontend``      — delta from an infinitely wide dispatch
* ``dependencies``  — delta from zero-latency results
* ``memory``        — delta from zero load-to-use latency
* ``divider``       — delta from a fully pipelined divider
* ``ports``         — floor attributable to execution-port pressure

The dominant category matches
:attr:`repro.analysis.throughput.AnalysisResult.bottleneck` for
clear-cut kernels — asserted in the test suite.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

from ..isa.instruction import Instruction
from ..machine import MachineModel, coerce_model
from ..simulator.core import CoreSimulator


@dataclass
class TopdownReport:
    cycles_per_iteration: float
    floor_cycles: float  #: resource floor with every limiter idealized
    deltas: dict[str, float]

    @property
    def dominant(self) -> str:
        if not self.deltas or max(self.deltas.values()) <= 1e-9:
            return "ports"
        return max(self.deltas, key=lambda k: self.deltas[k])

    def render(self) -> str:
        lines = [
            f"measured:            {self.cycles_per_iteration:8.2f} cy/iter",
            f"resource floor:      {self.floor_cycles:8.2f} cy/iter",
            "cycles recovered by idealizing, one at a time:",
        ]
        for k, v in sorted(self.deltas.items(), key=lambda kv: -kv[1]):
            mark = "  <-- dominant" if k == self.dominant and v > 1e-9 else ""
            lines.append(f"  {k:14s} {v:8.2f}{mark}")
        return "\n".join(lines)


def _clean(model: MachineModel, **kw) -> CoreSimulator:
    base = dict(
        issue_efficiency=1.0, dispatch_efficiency=1.0, measurement_overhead=0.0
    )
    base.update(kw)
    return CoreSimulator(model, **base)


def _run(sim: CoreSimulator, instrs, iterations=100, warmup=40) -> float:
    return sim.run(instrs, iterations=iterations, warmup=warmup).cycles_per_iteration


class _NoLatencySim(CoreSimulator):
    def _effective_latency(self, ins, latency):
        return 0.0


class _NoLoadLatencyModelWrapper:
    """Model proxy with zero load-to-use latency."""

    def __new__(cls, model: MachineModel) -> MachineModel:
        return dataclasses.replace(
            model,
            load_latency_gpr=0.0,
            load_latency_vec=0.0,
            entries=list(model.entries),
        )


def analyze_topdown(
    source_or_instrs: str | Sequence[Instruction],
    arch: str | MachineModel,
    iterations: int = 100,
) -> TopdownReport:
    """Attribute a loop body's cycles by counterfactual simulation."""
    model = coerce_model(arch)
    if isinstance(source_or_instrs, str):
        # Counterfactual runs perturb the model, so only the parsed
        # (not resolved) form of the lowered block is reusable here.
        from ..lowering import lower

        instrs = list(lower(source_or_instrs, model).instructions)
    else:
        instrs = list(source_or_instrs)

    measured = _run(_clean(model), instrs, iterations)

    # frontend idealized: absurdly wide dispatch
    wide = dataclasses.replace(
        model, dispatch_width=512, retire_width=512, entries=list(model.entries)
    )
    no_frontend = _run(_clean(wide), instrs, iterations)

    # dependencies idealized: all results in zero cycles
    no_deps = _run(
        _NoLatencySim(
            model,
            issue_efficiency=1.0,
            dispatch_efficiency=1.0,
            measurement_overhead=0.0,
        ),
        instrs,
        iterations,
    )

    # memory idealized: zero load-to-use latency (ports still busy)
    no_mem = _run(
        _clean(_NoLoadLatencyModelWrapper(model)), instrs, iterations
    )

    # divider idealized: fully pipelined divide
    no_div_sim = _clean(model, divider_overrides=None)
    no_div_sim.divider_overrides = {
        (model.name, i.mnemonic): 1.0 for i in instrs
    }
    no_div = _run(no_div_sim, instrs, iterations)

    # floor: everything idealized at once
    floor_sim = _NoLatencySim(
        wide,
        issue_efficiency=1.0,
        dispatch_efficiency=1.0,
        measurement_overhead=0.0,
        divider_overrides={(wide.name, i.mnemonic): 1.0 for i in instrs},
    )
    floor = _run(floor_sim, instrs, iterations)

    deltas = {
        "frontend": max(0.0, measured - no_frontend),
        "dependencies": max(0.0, measured - no_deps),
        "memory": max(0.0, measured - no_mem),
        "divider": max(0.0, measured - no_div),
    }
    return TopdownReport(
        cycles_per_iteration=measured,
        floor_cycles=floor,
        deltas=deltas,
    )
