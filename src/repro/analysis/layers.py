"""Layer-condition analysis: per-level data traffic of stencil loops.

The ECM model needs the bytes each loop iteration moves across every
cache boundary.  For streaming/stencil kernels this follows from the
classic *layer condition* (Stengel et al., ICS'15): a cache of
effective capacity ``C`` can reuse a neighbour row of a stencil iff the
working set of all concurrently live rows fits in ``C/2``.

* If the condition holds at some level, only the **leading** row of
  each input array misses below it (8 B/iteration/array + write-allocate
  traffic for the store).
* If it fails, every distinct row access misses (one full stream per
  stencil row).

Both the analytical condition and a **validation path** against the
line-granular cache simulator are provided; the test suite checks they
agree, which is how kerncraft-style tools are sanity-checked against
hardware counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernels.ir import collect_loads
from ..kernels.suite import KernelSpec
from ..machine.specs import ChipSpec
from ..simulator.memory import CacheHierarchy, CacheLevel


@dataclass(frozen=True)
class LevelTraffic:
    """Bytes per scalar iteration crossing one cache boundary."""

    level: str
    bytes_per_iteration: float
    layer_condition_holds: bool


@dataclass
class LayerConditionAnalysis:
    """Traffic prediction for one kernel on one chip."""

    kernel: KernelSpec
    chip: ChipSpec
    inner_length: int  #: elements per row of the innermost dimension
    levels: list[LevelTraffic]

    def bytes_at(self, level: str) -> float:
        for lt in self.levels:
            if lt.level == level:
                return lt.bytes_per_iteration
        raise KeyError(level)


def _distinct_rows(kernel: KernelSpec) -> dict[str, set[int]]:
    rows: dict[str, set[int]] = {}
    for ld in collect_loads(kernel.expr):
        rows.setdefault(ld.array, set()).add(ld.row)
    return rows


def analyze_layer_conditions(
    kernel: KernelSpec,
    chip: ChipSpec,
    inner_length: int,
    element_bytes: int = 8,
    nt_stores: bool = False,
) -> LayerConditionAnalysis:
    """Analytical per-level traffic for *kernel* with rows of
    ``inner_length`` elements."""
    rows = _distinct_rows(kernel)
    row_bytes = inner_length * element_bytes
    # rows that must live concurrently for full reuse
    n_live_rows = sum(len(r) for r in rows.values())
    store_arrays = 1 if kernel.store else 0

    mem = chip.memory
    caches = [("L1", mem.l1_bytes), ("L2", mem.l2_bytes), ("L3", mem.l3_bytes)]
    levels: list[LevelTraffic] = []
    for name, cap in caches:
        holds = (n_live_rows + store_arrays) * row_bytes <= cap / 2
        if holds:
            # one leading stream per input array (+ store traffic)
            n_streams = len(rows)
        else:
            # every distinct row misses
            n_streams = n_live_rows
        traffic = n_streams * element_bytes
        if kernel.store:
            if nt_stores:
                traffic += element_bytes  # write only
            else:
                traffic += 2 * element_bytes  # write-allocate: read + write
        levels.append(
            LevelTraffic(
                level=name,
                bytes_per_iteration=float(traffic),
                layer_condition_holds=holds,
            )
        )
    return LayerConditionAnalysis(
        kernel=kernel, chip=chip, inner_length=inner_length, levels=levels
    )


def simulate_traffic(
    kernel: KernelSpec,
    cache_bytes: int,
    inner_length: int,
    n_rows: int = 24,
    element_bytes: int = 8,
    line_bytes: int = 64,
    ways: int = 8,
) -> float:
    """Measure bytes/iteration below one cache level by simulation.

    Streams the kernel's access pattern (row-major, one sweep over
    ``n_rows`` rows) through a single cache of ``cache_bytes`` and
    returns the memory traffic per inner iteration — the ground truth
    the analytical layer condition is validated against.
    """
    q = line_bytes * ways
    size = max(q, (cache_bytes // q) * q)
    cache = CacheHierarchy(
        [CacheLevel("C", size, line_bytes, ways)], line_bytes=line_bytes
    )
    rows = _distinct_rows(kernel)
    row_stride = inner_length * element_bytes
    # distinct address space per array
    array_base = {
        a: k * (n_rows + 16) * row_stride * 2
        for k, a in enumerate(sorted(rows))
    }
    store_base = (len(rows) + 2) * (n_rows + 16) * row_stride * 2

    warm_rows = 4
    measured_iters = 0
    baseline = 0.0
    for j in range(n_rows):
        measure = j >= warm_rows
        if j == warm_rows:
            baseline = cache.stats.mem_read_bytes + cache.stats.mem_write_bytes
        for i in range(inner_length):
            for ld in collect_loads(kernel.expr):
                addr = (
                    array_base[ld.array]
                    + (j + ld.row) * row_stride
                    + (i + ld.offset) * element_bytes
                )
                cache.load(max(0, addr), element_bytes)
            if kernel.store:
                cache.store(
                    store_base + j * row_stride + i * element_bytes,
                    element_bytes,
                )
        if measure:
            measured_iters += inner_length
    if measured_iters == 0:
        return 0.0
    total = cache.stats.mem_read_bytes + cache.stats.mem_write_bytes
    return (total - baseline) / measured_iters
