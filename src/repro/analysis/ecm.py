"""Execution-Cache-Memory (ECM) model composition.

The paper's conclusion names this as the follow-up: feed the in-core
prediction into a node-level model.  The ECM model (Stengel et al.,
ICS'15) decomposes the runtime of one cache line's worth of iterations
into

* ``T_OL``   — in-core cycles that *overlap* with data transfers
  (arithmetic port pressure),
* ``T_nOL``  — non-overlapping in-core cycles (load/store µops in L1),
* ``T_L1L2``, ``T_L2L3``, ``T_L3Mem`` — inter-level transfer cycles.

Prediction for data in memory: ``max(T_OL, T_nOL + T_L1L2 + T_L2L3 +
T_L3Mem)`` (fully overlapping hierarchy for Grace/Genoa-style machines;
Intel server cores traditionally overlap nothing, selectable via
``overlap``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..machine import MachineModel, get_chip_spec
from .throughput import AnalysisResult


@dataclass(frozen=True)
class ECMPrediction:
    """Cycles per iteration with data resident in each level."""

    t_ol: float
    t_nol: float
    t_l1l2: float
    t_l2l3: float
    t_l3mem: float
    overlap: str

    def cycles(self, level: str) -> float:
        """Predicted cycles/iteration for data in ``level``.

        ``level`` is one of ``"L1"``, ``"L2"``, ``"L3"``, ``"MEM"``.
        """
        transfers = {
            "L1": 0.0,
            "L2": self.t_l1l2,
            "L3": self.t_l1l2 + self.t_l2l3,
            "MEM": self.t_l1l2 + self.t_l2l3 + self.t_l3mem,
        }[level.upper()]
        if self.overlap == "none":
            return self.t_ol + self.t_nol + transfers
        return max(self.t_ol, self.t_nol + transfers)

    def as_string(self) -> str:
        """Classic ECM shorthand ``{T_OL || T_nOL | L2 | L3 | MEM}``."""
        return (
            f"{{{self.t_ol:.1f} ∥ {self.t_nol:.1f} | {self.t_l1l2:.1f} | "
            f"{self.t_l2l3:.1f} | {self.t_l3mem:.1f}}} cy/it"
        )


@dataclass
class ECMModel:
    """ECM composition for one machine.

    Parameters
    ----------
    model:
        The in-core machine model (used to separate memory ports from
        arithmetic ports).
    chip:
        Chip alias for bandwidth data (``gcs``/``spr``/``genoa``).
    l2_bandwidth / l3_bandwidth:
        Inter-level bandwidths in bytes/cycle per core; defaults are
        typical server-core values.
    """

    model: MachineModel
    chip: str
    l2_bandwidth: float = 64.0
    l3_bandwidth: float = 32.0
    overlap: str = "full"  #: "full" (Arm/AMD-style) or "none" (Intel-style)

    def predict(
        self,
        analysis: AnalysisResult,
        *,
        bytes_l1l2: float,
        bytes_l2l3: float,
        bytes_l3mem: float,
        frequency_ghz: Optional[float] = None,
    ) -> ECMPrediction:
        """Compose the in-core analysis with per-iteration traffic.

        ``bytes_*`` are the data volumes one loop iteration moves across
        each boundary (from a layer-condition argument or the cache
        simulator).
        """
        mem_ports = (
            set(self.model.load_ports)
            | set(self.model.store_agu_ports)
            | set(self.model.store_data_ports)
        )
        t_nol = max(
            (analysis.pressure.totals[p] for p in mem_ports), default=0.0
        )
        t_ol = max(
            (
                analysis.pressure.totals[p]
                for p in self.model.ports
                if p not in mem_ports
            ),
            default=0.0,
        )
        t_ol = max(t_ol, analysis.divider_cycles, analysis.special_cycles)

        spec = get_chip_spec(self.chip)
        freq = frequency_ghz or spec.freq_base
        # memory bandwidth per core, in bytes per cycle at `freq`
        mem_bw = spec.memory.bw_sustained / spec.cores * 1e9 / (freq * 1e9) if freq else 1.0

        return ECMPrediction(
            t_ol=t_ol,
            t_nol=t_nol,
            t_l1l2=bytes_l1l2 / self.l2_bandwidth,
            t_l2l3=bytes_l2l3 / self.l3_bandwidth,
            t_l3mem=bytes_l3mem / mem_bw if mem_bw > 0 else float("inf"),
            overlap=self.overlap,
        )
