"""Roofline model with an in-core (model-derived) performance ceiling.

The classic Roofline uses the chip's theoretical peak as the horizontal
ceiling.  The paper's point is that an in-core model produces a *more
realistic* ceiling for a given kernel: the predicted cycles/iteration
bound the achievable FLOP rate even for compute-bound code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..machine import get_chip_spec
from .throughput import AnalysisResult


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel placed under the roofline."""

    arithmetic_intensity: float  #: FLOP / byte
    performance_gflops: float  #: attainable performance
    ceiling_gflops: float  #: in-core ceiling for this kernel
    bandwidth_bound: bool

    @property
    def limiting_factor(self) -> str:
        return "memory bandwidth" if self.bandwidth_bound else "in-core execution"


@dataclass
class RooflineModel:
    """Roofline with kernel-specific in-core ceilings.

    ``chip`` selects bandwidth and frequency data from Table I;
    ``cores`` defaults to the full chip.
    """

    chip: str
    cores: Optional[int] = None
    frequency_ghz: Optional[float] = None

    def ceiling_from_analysis(
        self, analysis: AnalysisResult, flops_per_iteration: float
    ) -> float:
        """In-core ceiling (GFLOP/s) implied by the static analysis."""
        spec = get_chip_spec(self.chip)
        cores = self.cores or spec.cores
        freq = self.frequency_ghz or spec.freq_base
        cycles = analysis.prediction
        if cycles <= 0:
            return float("inf")
        return flops_per_iteration / cycles * freq * cores

    def place(
        self,
        analysis: AnalysisResult,
        *,
        flops_per_iteration: float,
        bytes_per_iteration: float,
    ) -> RooflinePoint:
        """Place a kernel: attainable = min(in-core ceiling, I * BW)."""
        spec = get_chip_spec(self.chip)
        ceiling = self.ceiling_from_analysis(analysis, flops_per_iteration)
        intensity = (
            flops_per_iteration / bytes_per_iteration
            if bytes_per_iteration
            else float("inf")
        )
        bw_bound_perf = intensity * spec.memory.bw_sustained
        performance = min(ceiling, bw_bound_perf)
        return RooflinePoint(
            arithmetic_intensity=intensity,
            performance_gflops=performance,
            ceiling_gflops=ceiling,
            bandwidth_bound=bw_bound_perf < ceiling,
        )
