"""Cross-microarchitecture comparison of one kernel.

The paper's through-line is a three-way comparison; this helper runs
one kernel through codegen → analysis → simulation on all three
machines and lines the results up — the table a performance engineer
wants when deciding where a loop should run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bench.render import ascii_table
from ..engine import CorpusEngine, WorkUnit, resolve_engine
from ..kernels.codegen import generate_assembly
from ..kernels.extended import all_kernels
from ..kernels.personas import PERSONAS
from ..kernels.suite import KernelSpec
from ..machine import get_chip_spec
from ..simulator.frequency import FrequencyGovernor

_DEFAULT_PERSONA = {"golden_cove": "gcc", "zen4": "gcc", "neoverse_v2": "gcc-arm"}
_ELEMS = {"golden_cove": {"gcc": 8, "clang": 4, "icx": 8},
          "zen4": {"gcc": 4, "clang": 4, "icx": 4},
          "neoverse_v2": {"gcc-arm": 2, "armclang": 2}}


@dataclass
class ArchComparison:
    kernel: str
    opt: str
    rows: list[dict]

    def best_by(self, metric: str) -> str:
        reverse = metric in ("gflops_per_core",)
        key = (lambda r: -r[metric]) if reverse else (lambda r: r[metric])
        return min(self.rows, key=key)["chip"]

    def render(self) -> str:
        body = [
            [
                r["chip"].upper(),
                f"{r['prediction']:.2f}",
                f"{r['measured']:.2f}",
                r["bottleneck"],
                f"{r['cycles_per_element']:.3f}",
                f"{r['gflops_per_core']:.2f}",
            ]
            for r in self.rows
        ]
        return ascii_table(
            ["chip", "pred cy/it", "meas cy/it", "bottleneck",
             "cy/element", "GF/s/core"],
            body,
            title=f"{self.kernel} at -{self.opt} across microarchitectures",
        )


def compare_architectures(
    kernel: str | KernelSpec,
    opt: str = "O2",
    personas: dict[str, str] | None = None,
    *,
    engine: CorpusEngine | None = None,
) -> ArchComparison:
    """Run one kernel through all three machines and collect metrics.

    The heavy analysis + simulation of the three chips is submitted to
    the execution engine as one batch (parallel and memoized under
    ``repro-bench --jobs/--cache``); the per-chip bookkeeping —
    vector-element accounting and frequency lookup — stays inline.
    """
    k = kernel if isinstance(kernel, KernelSpec) else all_kernels()[kernel]
    personas = personas or _DEFAULT_PERSONA
    cases = []
    units = []
    for chip in ("gcs", "spr", "genoa"):
        spec = get_chip_spec(chip)
        uarch = spec.uarch
        persona_name = personas.get(uarch, _DEFAULT_PERSONA[uarch])
        p = PERSONAS[persona_name]
        asm = generate_assembly(k, p, opt, uarch)
        cases.append((chip, spec, persona_name, p.config(opt)))
        units.append(
            WorkUnit.make(
                "analyze_simulate",
                label=f"{chip}/{k.name}/{opt}",
                uarch=uarch,
                assembly=asm,
                iterations=80,
                warmup=25,
            )
        )
    outputs = resolve_engine(engine).run(units)

    rows = []
    for (chip, spec, persona_name, cfg), out in zip(cases, outputs):
        uarch = spec.uarch
        vec = (
            cfg.vectorize
            and k.vectorizable
            and (not k.needs_fast_math or cfg.fast_math)
        )
        if not vec:
            elems = 1
        else:
            elems = _ELEMS[uarch][persona_name] * (
                1 if (k.uses_index or k.has_carried_dependency) else cfg.unroll
            )
        gov = FrequencyGovernor.for_chip(spec)
        isa = spec.isa_classes[-1] if vec else "scalar"
        freq = gov.sustained(1, isa if isa in spec.frequency.power_coeff else "scalar")
        cy_elem = out["measurement"] / elems
        rows.append(
            {
                "chip": chip,
                "prediction": out["prediction"],
                "measured": out["measurement"],
                "bottleneck": out["bottleneck"],
                "elements_per_iteration": elems,
                "cycles_per_element": cy_elem,
                "gflops_per_core": k.flops_per_element / cy_elem * freq
                if cy_elem
                else 0.0,
            }
        )
    return ArchComparison(kernel=k.name, opt=opt, rows=rows)
