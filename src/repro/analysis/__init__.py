"""Static in-core analysis (the paper's primary contribution).

This package reimplements the OSACA methodology with the machine models
of :mod:`repro.machine`:

* :mod:`~repro.analysis.depgraph` — register/memory dependency graph,
  critical path, loop-carried dependency (LCD) detection;
* :mod:`~repro.analysis.portbinding` — µop→port assignment, both the
  OSACA-style equal-split heuristic and an exact LP solution;
* :mod:`~repro.analysis.throughput` — block throughput and runtime
  prediction combining port pressure, divider occupancy, frontend
  width, and LCD;
* :mod:`~repro.analysis.report` — OSACA-style plain-text report;
* :mod:`~repro.analysis.ecm` / :mod:`~repro.analysis.roofline` — the
  paper's "future work": composing the in-core prediction with data
  transfer costs.

Quick start::

    from repro import analyze
    result = analyze(asm_text, arch="zen4")
    print(result.prediction, result.block_throughput, result.lcd)
    print(result.report())
"""

from .depgraph import DependencyGraph, build_dependency_graph
from .portbinding import PortPressure, assign_ports_heuristic, assign_ports_optimal
from .throughput import AnalysisResult, analyze_kernel, analyze_instructions
from .report import render_report
from .ecm import ECMModel, ECMPrediction
from .roofline import RooflineModel, RooflinePoint
from .layers import (
    LayerConditionAnalysis,
    analyze_layer_conditions,
    simulate_traffic,
)
from .portfinder import (
    PortInferenceResult,
    find_probes,
    infer_ports,
)
from .scaling import ScalingPoint, ScalingPrediction, predict_scaling
from .topdown import TopdownReport, analyze_topdown
from .compare import ArchComparison, compare_architectures

__all__ = [
    "DependencyGraph",
    "build_dependency_graph",
    "PortPressure",
    "assign_ports_heuristic",
    "assign_ports_optimal",
    "AnalysisResult",
    "analyze_kernel",
    "analyze_instructions",
    "render_report",
    "ECMModel",
    "ECMPrediction",
    "RooflineModel",
    "RooflinePoint",
    "LayerConditionAnalysis",
    "analyze_layer_conditions",
    "simulate_traffic",
    "PortInferenceResult",
    "find_probes",
    "infer_ports",
    "ScalingPoint",
    "ScalingPrediction",
    "predict_scaling",
    "TopdownReport",
    "analyze_topdown",
    "ArchComparison",
    "compare_architectures",
]
