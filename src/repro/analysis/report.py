"""OSACA-style plain-text analysis report."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .throughput import AnalysisResult


def render_report(result: "AnalysisResult", max_width: int = 120) -> str:
    """Render a per-instruction port-pressure table plus the summary.

    Mirrors OSACA's combined view: one row per instruction with its
    pressure on each port, markers for loads/stores, and the bottom
    summary lines for throughput, critical path, and LCD.
    """
    ports = result.pressure.ports
    lcd_nodes = set(result.lcd_chain)

    col_w = max(5, max((len(p) for p in ports), default=3) + 2)
    header = "| " + " ".join(f"{p:>{col_w}}" for p in ports) + " |"
    lines = []
    lines.append(f"In-core analysis for machine model: {result.model_name}")
    lines.append("")
    lines.append(" " * 6 + header)
    lines.append("-" * min(max_width, 6 + len(header)))

    for i, (ins, per) in enumerate(
        zip(result.instructions, result.pressure.per_instruction)
    ):
        cells = []
        for p in ports:
            v = per.get(p, 0.0)
            cells.append(f"{v:>{col_w}.2f}" if v > 1e-9 else " " * col_w)
        marks = ""
        if result.resolved[i].n_loads:
            marks += "L"
        if result.resolved[i].n_stores:
            marks += "S"
        if i in lcd_nodes:
            marks += "*"
        text = str(ins)
        lines.append(f"{i:>4}  | {' '.join(cells)} | {marks:<3} {text}")

    lines.append("-" * min(max_width, 6 + len(header)))
    totals = "| " + " ".join(
        f"{result.pressure.totals[p]:>{col_w}.2f}" for p in ports
    ) + " |"
    lines.append(" " * 6 + totals)
    lines.append("")
    lines.append(f"Port binding method:        {result.pressure.method}")
    lines.append(f"Port pressure bound:        {result.block_throughput:8.2f} cy/iter"
                 f"  (port {result.pressure.bottleneck_port})")
    if result.divider_cycles:
        lines.append(f"Divider occupancy:          {result.divider_cycles:8.2f} cy/iter")
    if result.special_cycles:
        lines.append(f"Serialized-op bound:        {result.special_cycles:8.2f} cy/iter")
    lines.append(f"Frontend bound:             {result.frontend_cycles:8.2f} cy/iter")
    lines.append(f"Critical path (1 iter):     {result.critical_path:8.2f} cy")
    lines.append(f"Loop-carried dependency:    {result.lcd:8.2f} cy/iter")
    lines.append(f"Predicted runtime:          {result.prediction:8.2f} cy/iter"
                 f"  (bottleneck: {result.bottleneck})")
    unknown = [
        str(r.instruction)
        for r in result.resolved
        if r.from_default
    ]
    if unknown:
        lines.append("")
        lines.append("WARNING: default port assignment used for:")
        for u in unknown:
            lines.append(f"  {u}")
    return "\n".join(lines)
