"""repro — in-core performance models of Grace, Sapphire Rapids, and Genoa.

Reproduction of *"Microarchitectural comparison and in-core modeling of
state-of-the-art CPUs: Grace, Sapphire Rapids, and Genoa"* (Laukemann,
Hager, Wellein; SC'24).  See ``DESIGN.md`` for the system inventory and
``EXPERIMENTS.md`` for the paper-vs-measured record.

Typical usage::

    import repro

    # static lower-bound prediction (the paper's OSACA-style model)
    result = repro.analyze(asm_text, arch="zen4")
    print(result.report())

    # "hardware" measurement on the cycle-level core simulator
    meas = repro.simulate(asm_text, arch="zen4")
    print(meas.cycles_per_iteration)

    # LLVM-MCA-style baseline
    base = repro.mca_predict(asm_text, arch="zen4")

    # generate a validation-kernel variant the way a compiler would
    asm = repro.generate_assembly("striad", "gcc", "O2", "golden_cove")
"""

from .analysis import analyze_kernel as analyze
from .analysis import (
    AnalysisResult,
    ECMModel,
    ECMPrediction,
    RooflineModel,
    RooflinePoint,
    analyze_topdown,
    compare_architectures,
    infer_ports,
    predict_scaling,
)
from .isa import parse_kernel
from .kernels import generate_assembly, enumerate_corpus, KERNELS
from .machine import (
    CHIP_SPECS,
    ChipSpec,
    MachineModel,
    available_models,
    get_chip_spec,
    get_machine_model,
)
from .mca import mca_predict
from .simulator import (
    CoreSimulator,
    FrequencyGovernor,
    SimulationResult,
    run_store_benchmark,
    simulate_with_memory,
    sustained_frequency,
    timeline,
)
from .simulator import simulate_kernel as simulate

__version__ = "1.0.0"

__all__ = [
    "analyze",
    "AnalysisResult",
    "simulate",
    "SimulationResult",
    "CoreSimulator",
    "mca_predict",
    "parse_kernel",
    "generate_assembly",
    "enumerate_corpus",
    "KERNELS",
    "get_machine_model",
    "available_models",
    "MachineModel",
    "get_chip_spec",
    "ChipSpec",
    "CHIP_SPECS",
    "FrequencyGovernor",
    "sustained_frequency",
    "run_store_benchmark",
    "ECMModel",
    "ECMPrediction",
    "RooflineModel",
    "RooflinePoint",
    "analyze_topdown",
    "compare_architectures",
    "infer_ports",
    "predict_scaling",
    "simulate_with_memory",
    "timeline",
    "__version__",
]
