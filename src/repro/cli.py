"""Command-line entry points.

``repro-analyze``
    OSACA-style static analysis of an assembly file::

        repro-analyze loop.s --arch zen4
        repro-analyze loop.s --arch grace --compare   # + simulator + MCA

``repro-bench``
    Regenerate the paper's tables and figures::

        repro-bench table3
        repro-bench fig4
        repro-bench all --jobs 4 --cache .repro-cache

    ``--jobs N`` shards the corpus work across N worker processes;
    ``--cache DIR`` memoizes simulator/analyzer results in an on-disk
    content-addressed store (see ``docs/engine.md``).  A sub-benchmark
    failure is reported and the exit code is nonzero.
"""

from __future__ import annotations

import argparse
import sys


def analyze_main(argv: list[str] | None = None) -> int:
    from .analysis import analyze_kernel
    from .machine import available_models

    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="OSACA-style in-core analysis of an assembly loop body",
    )
    parser.add_argument("file", help="assembly file (AT&T x86-64 or AArch64); '-' for stdin")
    parser.add_argument(
        "--arch",
        required=True,
        help=f"machine model or chip alias ({', '.join(available_models())}, "
             "spr, genoa, grace, ...)",
    )
    parser.add_argument(
        "--heuristic",
        action="store_true",
        help="use the OSACA equal-split port binding instead of the exact LP",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="also run the core simulator (measurement) and the MCA baseline",
    )
    parser.add_argument(
        "--whole-file",
        action="store_true",
        help="analyze the input verbatim instead of extracting the "
             "marked/innermost loop",
    )
    parser.add_argument(
        "--timeline",
        action="store_true",
        help="render an llvm-mca-style pipeline timeline of the first "
             "iterations on the core simulator",
    )
    args = parser.parse_args(argv)

    source = sys.stdin.read() if args.file == "-" else open(args.file).read()
    if not args.whole_file:
        from .isa.markers import extract_kernel
        from .machine import get_machine_model

        isa = get_machine_model(args.arch).isa
        extracted = extract_kernel(source, isa)
        if extracted.method != "whole":
            print(
                f"[extracted loop body: lines {extracted.start_line}-"
                f"{extracted.end_line} via {extracted.method}]"
            )
        source = extracted.source
    result = analyze_kernel(source, args.arch, optimal_binding=not args.heuristic)
    print(result.report())

    if args.timeline:
        from .simulator.timeline import timeline

        print()
        print("Pipeline timeline (core simulator, first 3 iterations):")
        print(timeline(source, args.arch, iterations=3))

    if args.compare:
        from .mca import mca_predict
        from .simulator import simulate_kernel

        meas = simulate_kernel(source, args.arch)
        mca = mca_predict(source, args.arch)
        print()
        print(f"Simulated measurement:      {meas.cycles_per_iteration:8.2f} cy/iter")
        print(f"MCA baseline prediction:    {mca.cycles_per_iteration:8.2f} cy/iter")
        rpe = (
            (meas.cycles_per_iteration - result.prediction)
            / meas.cycles_per_iteration
        )
        print(f"Relative prediction error:  {rpe*100:+8.1f} %")
    return 0


def bench_main(argv: list[str] | None = None) -> int:
    from .bench import EXPERIMENTS, render_experiment
    from .engine import CorpusEngine, use_engine

    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="regenerate the paper's tables and figures",
    )
    parser.add_argument(
        "experiment",
        nargs="+",
        help=f"experiment name(s): {', '.join(EXPERIMENTS)}, 'verify', or 'all'",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="additionally dump the structured results of all named "
             "experiments as JSON",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard corpus-style work across N worker processes "
             "(default: 1, the exact serial path)",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        help="memoize simulator/analyzer results in an on-disk "
             "content-addressed cache rooted at DIR",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    engine = CorpusEngine(jobs=args.jobs, cache_dir=args.cache)
    names = list(EXPERIMENTS) if "all" in args.experiment else args.experiment
    collected: dict[str, object] = {}
    failures: list[str] = []
    with use_engine(engine):
        for name in names:
            try:
                if name == "verify":
                    _run_verify()
                    continue
                if name == "report":
                    from .bench.report import generate_report

                    summary = generate_report()
                    print(
                        f"report written to {summary['path']}: "
                        f"{summary['passed']}/{summary['total']} acceptance "
                        f"criteria pass ({summary['seconds']:.0f} s)"
                    )
                    continue
                print(render_experiment(name))
                print()
                if args.json:
                    collected[name] = EXPERIMENTS[name].run()
            except Exception as exc:
                failures.append(name)
                print(f"ERROR: {name} failed: {exc}", file=sys.stderr)
    if args.jobs > 1 or args.cache:
        print(f"[{engine.totals.summary()}]")
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(_jsonable(collected), fh, indent=1)
        print(f"[structured results written to {args.json}]")
    if failures:
        print(
            f"ERROR: {len(failures)} experiment(s) failed: "
            f"{', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


def _jsonable(obj):
    """Recursively convert dataclasses/tuples to JSON-safe structures."""
    import dataclasses

    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return str(obj)


def _run_verify() -> None:
    """Model self-check: measure a sample of every entry (ibench-style)
    and flag data inconsistencies."""
    from .bench.ibench import verify_model
    from .machine import available_models, get_machine_model

    for name in available_models():
        model = get_machine_model(name)
        report = verify_model(model, sample_every=7)
        status = "OK" if not report["violations"] else "INCONSISTENT"
        print(
            f"{name:14s} checked {report['checked']:4d} entries "
            f"(skipped {report['skipped']}): {status}"
        )
        for v in report["violations"]:
            print(f"    VIOLATION: {v}")
        for s in report["interference"][:5]:
            print(f"    note (slower than bound, likely chain-bound): {s}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(analyze_main())
