"""Command-line entry points.

``repro-analyze``
    OSACA-style static analysis of an assembly file::

        repro-analyze loop.s --arch zen4
        repro-analyze loop.s --arch grace --compare   # + simulator + MCA
        repro-analyze loop.s --arch spr --backend all # side-by-side table
        repro-analyze loop.s --arch genoa --trace t.json  # pipeline trace

    ``--backend model|mca|sim|all`` selects the prediction backend from
    the registry (:mod:`repro.backends`); ``all`` runs every backend
    over one shared lowering and prints a side-by-side table.

    ``--trace PATH`` runs the core simulator with the
    :mod:`repro.obs` tracer attached and writes a Chrome trace-event
    JSON of the pipeline schedule (per-instruction dispatch/µop/retire
    events on port lanes, cause-attributed stalls) — open it in
    Perfetto or ``chrome://tracing``.

``repro-bench``
    Regenerate the paper's tables and figures::

        repro-bench table3
        repro-bench fig4
        repro-bench all --jobs 4 --cache .repro-cache
        repro-bench fig3 --backends model,sim
        repro-bench fig3 --run-report r.json --trace engine.json

    ``--jobs N`` shards the corpus work across N worker processes;
    ``--cache DIR`` memoizes simulator/analyzer results in an on-disk
    content-addressed store (see ``docs/engine.md``).  A sub-benchmark
    failure is reported and the exit code is nonzero.  On an
    interactive terminal, per-unit progress renders as a stderr bar.
    ``--run-report PATH`` writes a structured manifest of the run
    (config, model digests, per-benchmark accuracy, timings).
    ``--error-policy collect|quarantine`` lets a sweep survive failing
    work units (structured failure reports, nonzero exit while any
    remain); ``--max-retries`` / ``--unit-timeout`` bound transient
    failures and hung units (see ``docs/robustness.md``).

``repro-report``
    Diff two run-report manifests and flag accuracy or runtime
    regressions::

        repro-report baseline.json current.json
        repro-report baseline.json current.json --check   # CI gate

    ``--check`` exits nonzero when regressions are found (see
    ``docs/observability.md``).

``repro-serve``
    Long-running analysis-as-a-service daemon over the corpus engine::

        repro-serve --port 8472 --jobs 4 --cache .repro-cache
        curl -d '{"assembly": "...", "arch": "spr"}' \
            http://127.0.0.1:8472/v1/analyze

    Bounded admission (429 backpressure), per-request deadlines (504),
    per-backend circuit breakers (503), fault-isolated workers, and
    graceful SIGTERM drain — see ``docs/serving.md``.

``repro-serve-bench``
    Deterministic load-generator benchmark of the daemon (hot cache,
    cold batch, overload backpressure scenarios); writes/gates the
    ``BENCH_serve.json`` baseline::

        repro-serve-bench                 # refresh the baseline
        repro-serve-bench --check         # CI gate
"""

from __future__ import annotations

import argparse
import sys


def analyze_main(argv: list[str] | None = None) -> int:
    from .analysis import analyze_kernel
    from .machine import available_models

    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="OSACA-style in-core analysis of an assembly loop body",
    )
    parser.add_argument("file", help="assembly file (AT&T x86-64 or AArch64); '-' for stdin")
    parser.add_argument(
        "--arch",
        required=True,
        help=f"machine model or chip alias ({', '.join(available_models())}, "
             "spr, genoa, grace, ...)",
    )
    parser.add_argument(
        "--backend",
        choices=("model", "mca", "sim", "fastpath", "all"),
        default="model",
        help="prediction backend to run: the OSACA-style static model "
             "(default, full bottleneck report), the MCA baseline, the "
             "cycle-level core simulator, the analytical fast path "
             "(steady state when confident, cycle-accurate fallback), "
             "or 'all' for a side-by-side table over one shared "
             "lowering",
    )
    parser.add_argument(
        "--heuristic",
        action="store_true",
        help="use the OSACA equal-split port binding instead of the exact LP",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="also run the core simulator (measurement) and the MCA baseline",
    )
    parser.add_argument(
        "--whole-file",
        action="store_true",
        help="analyze the input verbatim instead of extracting the "
             "marked/innermost loop",
    )
    parser.add_argument(
        "--timeline",
        action="store_true",
        help="render an llvm-mca-style pipeline timeline of the first "
             "iterations on the core simulator",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="simulate the kernel with the pipeline tracer attached and "
             "write a Chrome trace-event JSON (open in Perfetto or "
             "chrome://tracing)",
    )
    args = parser.parse_args(argv)

    source = sys.stdin.read() if args.file == "-" else open(args.file).read()
    if not args.whole_file:
        from .isa.markers import extract_kernel
        from .machine import get_machine_model

        isa = get_machine_model(args.arch).isa
        extracted = extract_kernel(source, isa)
        if extracted.method != "whole":
            print(
                f"[extracted loop body: lines {extracted.start_line}-"
                f"{extracted.end_line} via {extracted.method}]"
            )
        source = extracted.source

    if args.backend != "model":
        return _analyze_backends(source, args)

    result = analyze_kernel(source, args.arch, optimal_binding=not args.heuristic)
    print(result.report())

    if args.timeline:
        from .simulator.timeline import timeline

        print()
        print("Pipeline timeline (core simulator, first 3 iterations):")
        print(timeline(source, args.arch, iterations=3))

    meas = None
    if args.trace:
        from .obs.trace import Tracer
        from .simulator import simulate_kernel

        tracer = Tracer()
        meas = simulate_kernel(
            source, args.arch, tracer=tracer, collect_stalls=True
        )
        tracer.write(
            args.trace,
            other_data={
                "arch": args.arch,
                "cycles_per_iteration": meas.cycles_per_iteration,
                "total_cycles": meas.total_cycles,
                "iterations": meas.iterations,
                "warmup_iterations": meas.warmup_iterations,
                "stall_cycles": meas.stall_cycles,
            },
        )
        print()
        print(
            f"[trace: {len(tracer.events)} events "
            f"({meas.total_cycles:.0f} simulated cycles) "
            f"written to {args.trace}]"
        )
        top = sorted(
            meas.stall_cycles.items(), key=lambda kv: -kv[1]
        )[:3]
        shown = ", ".join(f"{k}={v:.0f}" for k, v in top if v > 0)
        if shown:
            print(f"[stall cycles by cause: {shown}]")

    if args.compare:
        from .mca import mca_predict
        from .simulator import simulate_kernel

        if meas is None:
            meas = simulate_kernel(source, args.arch)
        mca = mca_predict(source, args.arch)
        print()
        print(f"Simulated measurement:      {meas.cycles_per_iteration:8.2f} cy/iter")
        print(f"MCA baseline prediction:    {mca.cycles_per_iteration:8.2f} cy/iter")
        rpe = (
            (meas.cycles_per_iteration - result.prediction)
            / meas.cycles_per_iteration
        )
        print(f"Relative prediction error:  {rpe*100:+8.1f} %")
    return 0


def _analyze_backends(source: str, args) -> int:
    """``repro-analyze --backend mca|sim|all`` — registry dispatch paths.

    All backends predict from one shared lowering of the block
    (:mod:`repro.lowering`), so the comparison can never drift through
    divergent parsing.
    """
    from .backends import predict_all

    names = (
        ["model", "mca", "sim", "fastpath"]
        if args.backend == "all"
        else [args.backend]
    )
    opts = {"model": {"optimal_binding": not args.heuristic}}
    results = predict_all(source, args.arch, backends=names, opts=opts)

    if args.backend != "all":
        r = results[args.backend]
        detail = r.detail
        if hasattr(detail, "summary"):
            print(detail.summary())
        else:
            print(f"{r.backend} (v{r.version}): "
                  f"{r.cycles_per_iteration:.2f} cy/iter")
            for k, v in sorted(r.stats.items()):
                print(f"  {k}: {v:.4g}" if isinstance(v, float) else f"  {k}: {v}")
        return 0

    meas = results["sim"].cycles_per_iteration
    print(f"{'backend':10s} {'cy/iter':>9s}   {'vs sim':>8s}   note")
    for name in names:
        r = results[name]
        if name == "sim":
            note = "(measurement)"
            vs = ""
        else:
            rpe = (meas - r.cycles_per_iteration) / meas if meas else 0.0
            vs = f"{rpe*100:+7.1f}%"
            note = r.bottleneck or ""
        print(
            f"{name:10s} {r.cycles_per_iteration:9.2f}   {vs:>8s}   {note}"
        )
    return 0


def bench_main(argv: list[str] | None = None) -> int:
    import contextlib
    import time

    from .bench import EXPERIMENTS, render_experiment
    from .engine import CorpusEngine, use_engine

    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="regenerate the paper's tables and figures",
    )
    parser.add_argument(
        "experiment",
        nargs="*",
        help=f"experiment name(s): {', '.join(EXPERIMENTS)}, 'verify', or 'all'",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="additionally dump the structured results of all named "
             "experiments as JSON",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard corpus-style work across N worker processes "
             "(default: 1, the exact serial path)",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        help="memoize simulator/analyzer results in an on-disk "
             "content-addressed cache rooted at DIR",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome trace-event JSON of the engine's work-unit "
             "schedule (worker lanes, cache hit/miss events)",
    )
    parser.add_argument(
        "--run-report",
        metavar="PATH",
        dest="run_report",
        help="write a structured run-report manifest (config, model "
             "digests, per-benchmark accuracy stats, timings); diff two "
             "with repro-report",
    )
    parser.add_argument(
        "--profile",
        metavar="PATH",
        help="profile the run (hierarchical phase timers, per-cycle "
             "port/ROB attribution) and write the snapshot JSON to "
             "PATH; also prints the ranked attribution report",
    )
    parser.add_argument(
        "--flamegraph",
        metavar="PATH",
        help="with profiling on, additionally write the phase tree in "
             "collapsed-stack format (feed to flamegraph.pl or "
             "speedscope)",
    )
    parser.add_argument(
        "--backends",
        metavar="NAMES",
        help="comma-separated subset of fig3's prediction backends "
             "(model,mca,sim); 'sim' is always required — it is the "
             "measurement every RPE is computed against",
    )
    parser.add_argument(
        "--engine",
        choices=("cycle", "fastpath"),
        default="cycle",
        dest="measurement_engine",
        help="fig3 measurement engine: the cycle-accurate core "
             "simulator (default) or the analytical steady-state fast "
             "path with cycle-accurate fallback; fastpath runs record "
             "which engine answered each unit in the manifest",
    )
    parser.add_argument(
        "--error-policy",
        choices=("fail_fast", "collect", "quarantine"),
        default="fail_fast",
        dest="error_policy",
        help="what a failed work unit does to the run: abort it "
             "(fail_fast, default), finish the sweep and report "
             "structured failures (collect — the exit code is still "
             "nonzero when failures remain), or additionally skip the "
             "failed units in later batches (quarantine); see "
             "docs/robustness.md",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        dest="max_retries",
        help="re-attempts for transiently failed units (deterministic "
             "exponential backoff; default: 2, 0 disables retries)",
    )
    parser.add_argument(
        "--unit-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        dest="unit_timeout",
        help="per-attempt deadline for one work unit; a unit running "
             "past it fails transiently and is retried within the "
             "retry budget (default: no deadline)",
    )
    parser.add_argument(
        "--list-quarantine",
        action="store_true",
        dest="list_quarantine",
        help="list the units quarantined under --cache (persisted "
             "skip-list from earlier quarantine-policy runs) and exit",
    )
    parser.add_argument(
        "--clear-quarantine",
        action="store_true",
        dest="clear_quarantine",
        help="release every unit quarantined under --cache so the next "
             "sweep re-attempts them, and exit (the result cache itself "
             "is untouched)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.list_quarantine or args.clear_quarantine:
        if not args.cache:
            parser.error(
                "--list-quarantine/--clear-quarantine operate on the "
                "persistent skip-list under --cache DIR"
            )
        return _quarantine_admin(args)
    if not args.experiment:
        parser.error("name at least one experiment (or 'all')")
    if args.max_retries < 0:
        parser.error("--max-retries must be >= 0")
    if args.unit_timeout is not None and args.unit_timeout <= 0:
        parser.error("--unit-timeout must be positive")
    backends: tuple[str, ...] | None = None
    if args.backends:
        from .bench.fig3 import _normalize_backends

        try:
            backends = _normalize_backends(
                tuple(s.strip() for s in args.backends.split(",") if s.strip())
            )
        except ValueError as exc:
            parser.error(str(exc))

    from .obs.progress import ProgressBar

    progress = ProgressBar.if_tty()
    engine = CorpusEngine(
        jobs=args.jobs,
        cache_dir=args.cache,
        progress=progress,
        error_policy=args.error_policy,
        max_retries=args.max_retries,
        unit_timeout=args.unit_timeout,
    )
    names = list(EXPERIMENTS) if "all" in args.experiment else args.experiment
    structured = bool(args.json or args.run_report)
    collected: dict[str, object] = {}
    bench_records: dict[str, dict] = {}
    failures: list[str] = []
    wall0, cpu0 = time.perf_counter(), time.process_time()
    if args.run_report:
        from .obs.metrics import get_registry

        registry_since = get_registry().snapshot()
    tracer = None
    profiler = None
    with contextlib.ExitStack() as stack:
        stack.enter_context(use_engine(engine))
        if progress is not None:
            stack.callback(progress.finish)
        if args.trace:
            from .obs.trace import Tracer, use_tracer

            tracer = Tracer()
            stack.enter_context(use_tracer(tracer))
        if args.profile or args.flamegraph:
            from .obs.prof import PhaseProfiler, use_profiler

            profiler = PhaseProfiler()
            stack.enter_context(use_profiler(profiler))
        for name in names:
            t0 = time.perf_counter()
            try:
                if name == "verify":
                    _run_verify()
                elif name == "report":
                    from .bench.report import generate_report

                    summary = generate_report()
                    print(
                        f"report written to {summary['path']}: "
                        f"{summary['passed']}/{summary['total']} acceptance "
                        f"criteria pass ({summary['seconds']:.0f} s)"
                    )
                elif name == "fig3" and (
                    backends is not None
                    or args.measurement_engine != "cycle"
                ):
                    result = EXPERIMENTS[name].run(
                        backends=backends,
                        measurement_engine=args.measurement_engine,
                    )
                    collected[name] = result
                    if progress is not None:
                        progress.finish()
                    print(render_experiment(name, result))
                    print()
                elif structured and name in EXPERIMENTS:
                    result = EXPERIMENTS[name].run()
                    collected[name] = result
                    if progress is not None:
                        progress.finish()
                    print(render_experiment(name, result))
                    print()
                else:
                    print(render_experiment(name))
                    print()
            except Exception as exc:
                failures.append(name)
                bench_records[name] = {
                    "status": "error",
                    "seconds": time.perf_counter() - t0,
                    "error": str(exc),
                }
                print(f"ERROR: {name} failed: {exc}", file=sys.stderr)
            else:
                record: dict = {
                    "status": "ok",
                    "seconds": time.perf_counter() - t0,
                }
                if args.run_report and name in collected:
                    from .obs.report import benchmark_stats

                    record["stats"] = benchmark_stats(name, collected[name])
                bench_records[name] = record
            finally:
                if progress is not None:
                    progress.finish()
    if args.jobs > 1 or args.cache:
        print(f"[{engine.totals.summary()}]")
    if tracer is not None:
        tracer.write(
            args.trace,
            other_data={"command": "repro-bench", "experiments": names},
        )
        print(f"[engine trace written to {args.trace}]")
    if profiler is not None:
        print(profiler.report(top=8))
        if args.profile:
            profiler.write(args.profile)
            print(f"[profile written to {args.profile}]")
        if args.flamegraph:
            profiler.write_collapsed(args.flamegraph)
            print(f"[collapsed stacks written to {args.flamegraph}]")
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(_jsonable(collected), fh, indent=1)
        print(f"[structured results written to {args.json}]")
    if args.run_report:
        from .obs.metrics import get_registry
        from .obs.report import build_manifest, write_manifest

        manifest = build_manifest(
            command="repro-bench",
            config={
                "experiments": names,
                "jobs": args.jobs,
                "cache": bool(args.cache),
                "trace": bool(args.trace),
                "backends": list(backends) if backends else None,
            },
            benchmarks=bench_records,
            wall_seconds=time.perf_counter() - wall0,
            cpu_seconds=time.process_time() - cpu0,
            engine=engine,
            registry=get_registry(),
            registry_since=registry_since,
            failures=failures,
            unit_failures=engine.failure_log,
        )
        write_manifest(manifest, args.run_report)
        print(f"[run report written to {args.run_report}]")
    if engine.failure_log:
        print(
            f"ERROR: {len(engine.failure_log)} work unit(s) failed "
            f"(error_policy={args.error_policy}):",
            file=sys.stderr,
        )
        for f in engine.failure_log[:20]:
            print(f"  {f.summary()}", file=sys.stderr)
        if len(engine.failure_log) > 20:
            print(
                f"  ... and {len(engine.failure_log) - 20} more",
                file=sys.stderr,
            )
    if failures:
        print(
            f"ERROR: {len(failures)} experiment(s) failed: "
            f"{', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 1 if engine.failure_log else 0


def _quarantine_admin(args) -> int:
    """``repro-bench --list-quarantine/--clear-quarantine`` under --cache.

    Operators recover from a poisoned skip-list here instead of
    deleting the cache directory by hand (which would also throw away
    every good memoized result).
    """
    from .engine import CorpusEngine

    engine = CorpusEngine(
        jobs=1, cache_dir=args.cache, error_policy="quarantine"
    )
    entries = engine.quarantine_entries()
    if args.list_quarantine:
        if not entries:
            print(f"no quarantined units under {args.cache}")
        else:
            print(f"{len(entries)} quarantined unit(s) under {args.cache}:")
            for key, info in sorted(entries.items()):
                label = info.get("label") or "?"
                print(
                    f"  {key[:16]}  {label}  "
                    f"[{info.get('error_class', '?')}: "
                    f"{info.get('message', '')[:60]}]"
                )
    if args.clear_quarantine:
        released = engine.clear_quarantine()
        print(
            f"released {released} quarantined unit(s); the next sweep "
            "re-attempts them"
        )
    return 0


def fuzz_main(argv: list[str] | None = None) -> int:
    import contextlib

    from .engine import CorpusEngine, use_engine

    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description="seeded kernel fuzzing with differential backend "
                    "validation: generate a deterministic mutated-kernel "
                    "corpus, fan it out over the model/mca/sim backends, "
                    "and triage where they disagree (docs/fuzzing.md)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="corpus seed; the same (seed, count) always regenerates the "
             "identical corpus and triage manifest (default: 0)",
    )
    parser.add_argument(
        "--count",
        type=int,
        default=1000,
        metavar="N",
        help="number of fuzzed kernels to generate (default: 1000)",
    )
    parser.add_argument(
        "--isa",
        choices=("x86", "aarch64", "both"),
        default="both",
        help="restrict the corpus to one ISA's machines/personas "
             "(default: both)",
    )
    parser.add_argument(
        "--backends",
        metavar="NAMES",
        default="model,sim,mca",
        help="comma-separated backends to cross-check (>= 2 of "
             "model,mca,sim; default: all three)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="REL",
        help="relative spread beyond which backend disagreement counts "
             "as a divergence (default: %s)" % "0.25",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="simulator iterations per kernel (default: 60; mca/warmup "
             "budgets derive from it exactly as for the paper corpus)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard the sweep across N worker processes (default: 1; "
             "the triage manifest is identical at any jobs count)",
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        help="memoize backend results in an on-disk cache rooted at DIR "
             "(fuzz sweeps default to cache-less)",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        help="write the triage report as a run-report manifest; diff "
             "against a committed baseline with repro-report --check",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="divergences/clusters to show in the console summary "
             "(default: 10)",
    )
    parser.add_argument(
        "--error-policy",
        choices=("fail_fast", "collect", "quarantine"),
        default="collect",
        dest="error_policy",
        help="disposition of fuzzer-provoked unit failures (default: "
             "collect — a crashing kernel never kills the sweep; "
             "quarantine degrades to collect when no --cache is set)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        dest="max_retries",
        help="re-attempts for transiently failed units (default: 2)",
    )
    parser.add_argument(
        "--unit-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        dest="unit_timeout",
        help="per-attempt deadline for one work unit (default: none)",
    )
    args = parser.parse_args(argv)
    if args.seed < 0:
        parser.error("--seed must be >= 0")
    if args.count < 1:
        parser.error("--count must be >= 1")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.tolerance is not None and args.tolerance <= 0:
        parser.error("--tolerance must be positive")
    if args.iterations is not None and args.iterations < 1:
        parser.error("--iterations must be >= 1")
    if args.max_retries < 0:
        parser.error("--max-retries must be >= 0")
    if args.unit_timeout is not None and args.unit_timeout <= 0:
        parser.error("--unit-timeout must be positive")
    backends = tuple(s.strip() for s in args.backends.split(",") if s.strip())

    from .fuzz import (
        DEFAULT_ITERATIONS,
        DEFAULT_TOLERANCE,
        build_triage_manifest,
        generate_fuzz_corpus,
        render_triage,
        run_differential,
    )
    from .fuzz.triage import write_manifest
    from .obs.progress import ProgressBar

    try:
        corpus = generate_fuzz_corpus(args.seed, args.count, isa=args.isa)
    except ValueError as exc:
        parser.error(str(exc))
    print(
        f"generated {len(corpus)} fuzzed kernels "
        f"(seed {args.seed}, isa {args.isa})"
    )
    progress = ProgressBar.if_tty()
    engine = CorpusEngine(
        jobs=args.jobs,
        cache_dir=args.cache,
        progress=progress,
        error_policy=args.error_policy,
        max_retries=args.max_retries,
        unit_timeout=args.unit_timeout,
    )
    with contextlib.ExitStack() as stack:
        stack.enter_context(use_engine(engine))
        if progress is not None:
            stack.callback(progress.finish)
        try:
            result = run_differential(
                corpus,
                seed=args.seed,
                backends=backends,
                tolerance=(
                    args.tolerance if args.tolerance is not None
                    else DEFAULT_TOLERANCE
                ),
                iterations=(
                    args.iterations if args.iterations is not None
                    else DEFAULT_ITERATIONS
                ),
                engine=engine,
            )
        except ValueError as exc:
            parser.error(str(exc))
    manifest = build_triage_manifest(result, isa=args.isa)
    print(render_triage(manifest, limit=args.top))
    if args.jobs > 1 or args.cache:
        print(f"[{engine.totals.summary()}]")
    if args.report:
        write_manifest(manifest, args.report)
        print(f"[triage report written to {args.report}]")
    if engine.failure_log:
        print(
            f"ERROR: {len(engine.failure_log)} work unit(s) failed "
            f"(error_policy={args.error_policy}):",
            file=sys.stderr,
        )
        for f in engine.failure_log[:20]:
            print(f"  {f.summary()}", file=sys.stderr)
        if len(engine.failure_log) > 20:
            print(
                f"  ... and {len(engine.failure_log) - 20} more",
                file=sys.stderr,
            )
        return 1
    return 0


def report_main(argv: list[str] | None = None) -> int:
    """``repro-report`` — diff two run-report manifests."""
    from .obs.report import diff_manifests, load_manifest

    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="diff two repro-bench run-report manifests and flag "
                    "accuracy or runtime regressions",
    )
    parser.add_argument("baseline", help="baseline manifest JSON")
    parser.add_argument("current", help="current manifest JSON")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero when regressions are found (CI gate mode)",
    )
    parser.add_argument(
        "--accuracy-tolerance",
        type=float,
        default=1e-6,
        metavar="REL",
        help="relative tolerance before an accuracy stat counts as "
             "regressed (default: 1e-6)",
    )
    parser.add_argument(
        "--runtime-tolerance",
        type=float,
        default=0.25,
        metavar="REL",
        help="relative wall-time growth tolerated before flagging a "
             "runtime regression (default: 0.25)",
    )
    parser.add_argument(
        "--min-runtime-seconds",
        type=float,
        default=1.0,
        metavar="SECONDS",
        dest="min_runtime_seconds",
        help="noise floor: wall times below this never count as "
             "runtime regressions (default: 1.0)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="additionally dump the findings as JSON",
    )
    args = parser.parse_args(argv)
    if args.min_runtime_seconds < 0:
        parser.error("--min-runtime-seconds must be >= 0")

    try:
        baseline = load_manifest(args.baseline)
        current = load_manifest(args.current)
    except (OSError, ValueError) as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 2
    diff = diff_manifests(
        baseline,
        current,
        accuracy_tolerance=args.accuracy_tolerance,
        runtime_tolerance=args.runtime_tolerance,
        min_runtime_seconds=args.min_runtime_seconds,
    )
    print(diff.render())
    if args.json:
        import dataclasses
        import json

        with open(args.json, "w") as fh:
            json.dump(
                {
                    "ok": diff.ok,
                    "compared_metrics": diff.compared_metrics,
                    "findings": [dataclasses.asdict(f) for f in diff.findings],
                },
                fh,
                indent=1,
            )
    if args.check and not diff.ok:
        return 1
    return 0


def serve_main(argv: list[str] | None = None) -> int:
    """``repro-serve`` — the analysis-as-a-service daemon."""
    import logging

    from .serve.daemon import ServeConfig, run_server

    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="fault-contained analysis-as-a-service daemon: "
                    "POST /v1/analyze with {assembly, arch, backend}; "
                    "bounded admission, deadlines, circuit breakers, "
                    "graceful drain (docs/serving.md)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8472,
        help="listen port; 0 picks a free one (default: 8472)",
    )
    parser.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="engine worker processes (default: 2; keep >= 2 so hung "
             "units can be killed at the --unit-timeout deadline)",
    )
    parser.add_argument(
        "--cache", metavar="DIR", dest="cache",
        help="content-addressed result cache — the serving hot path "
             "(strongly recommended for any real deployment)",
    )
    parser.add_argument(
        "--error-policy", choices=("collect", "quarantine"),
        default="collect", dest="error_policy",
        help="failed-unit disposition: collect (default) or quarantine "
             "(repeat offenders are refused without re-evaluating; "
             "requires --cache)",
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=64, metavar="N",
        dest="queue_capacity",
        help="admission queue bound; requests beyond it get 429 + "
             "Retry-After (default: 64)",
    )
    parser.add_argument(
        "--batch-max", type=int, default=16, metavar="N", dest="batch_max",
        help="max requests coalesced into one engine batch (default: 16)",
    )
    parser.add_argument(
        "--request-timeout", type=float, default=30.0, metavar="SECONDS",
        dest="request_timeout",
        help="end-to-end deadline per request, queue wait included; "
             "clients may shorten it per-request via X-Timeout "
             "(default: 30)",
    )
    parser.add_argument(
        "--unit-timeout", type=float, default=20.0, metavar="SECONDS",
        dest="unit_timeout",
        help="engine per-attempt deadline; a hung unit is killed and "
             "surfaces as 504 (default: 20; 0 disables)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=1, metavar="N",
        dest="max_retries",
        help="engine re-attempts for transient failures (default: 1)",
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=5, metavar="N",
        dest="breaker_threshold",
        help="consecutive 5xx-class failures that open a backend's "
             "circuit breaker (default: 5)",
    )
    parser.add_argument(
        "--breaker-cooldown", type=float, default=5.0, metavar="SECONDS",
        dest="breaker_cooldown",
        help="seconds an open breaker waits before a half-open probe "
             "(default: 5)",
    )
    parser.add_argument(
        "--drain-deadline", type=float, default=10.0, metavar="SECONDS",
        dest="drain_deadline",
        help="how long a SIGTERM/SIGINT drain waits for in-flight "
             "requests before giving up (default: 10)",
    )
    parser.add_argument(
        "--manifest", metavar="PATH", dest="manifest",
        help="flush a run-report manifest (serving stats + metrics) "
             "here on drain",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="log at DEBUG instead of INFO",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.port < 0 or args.port > 65535:
        parser.error("--port must be 0..65535")
    if args.queue_capacity < 1:
        parser.error("--queue-capacity must be >= 1")
    if args.batch_max < 1:
        parser.error("--batch-max must be >= 1")
    if args.request_timeout <= 0:
        parser.error("--request-timeout must be positive")
    if args.unit_timeout < 0:
        parser.error("--unit-timeout must be >= 0 (0 disables)")
    if args.error_policy == "quarantine" and not args.cache:
        parser.error("--error-policy quarantine requires --cache")
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(levelname)s %(name)s: %(message)s",
    )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache_dir=args.cache,
        error_policy=args.error_policy,
        queue_capacity=args.queue_capacity,
        batch_max=args.batch_max,
        request_timeout=args.request_timeout,
        unit_timeout=args.unit_timeout or None,
        max_retries=args.max_retries,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        drain_deadline=args.drain_deadline,
        manifest_path=args.manifest,
    )
    return run_server(config)


def serve_bench_main(argv: list[str] | None = None) -> int:
    """``repro-serve-bench`` — deterministic serving load benchmark."""
    from .obs.report import diff_manifests, load_manifest, write_manifest
    from .serve.loadgen import (
        DEFAULT_SEED,
        SCENARIOS,
        render_summary,
        run_serve_bench,
    )

    default_baseline = "BENCH_serve.json"
    parser = argparse.ArgumentParser(
        prog="repro-serve-bench",
        description="drive a real repro-serve daemon with deterministic "
                    "load scenarios (hot cache, cold batch, overload "
                    "backpressure) and write/gate the serving baseline "
                    "manifest",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="re-run the scenarios and exit nonzero on regressions "
             "against the baseline (the baseline file is never "
             "rewritten)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=default_baseline,
        help=f"baseline manifest for --check (default: {default_baseline})",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="where to write the fresh manifest (default: the baseline "
             "path, or only printed in --check mode)",
    )
    parser.add_argument(
        "--scenarios",
        metavar="NAMES",
        help=f"comma-separated subset (default: all; known: "
             f"{', '.join(SCENARIOS)})",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        metavar="N",
        help=f"fuzz-corpus seed for the request stream "
             f"(default: {DEFAULT_SEED})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink every scenario (smoke tests; baselines and checks "
             "must agree on this)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.6,
        metavar="REL",
        help="relative tolerance for --check: latency/throughput may "
             "drift this much; structural gates (errors, availability, "
             "hit rate, 429 presence) are unaffected by noise "
             "(default: 0.6)",
    )
    args = parser.parse_args(argv)
    if args.seed < 0:
        parser.error("--seed must be >= 0")
    if args.tolerance <= 0:
        parser.error("--tolerance must be positive")
    scenarios = None
    if args.scenarios:
        scenarios = [
            s.strip() for s in args.scenarios.split(",") if s.strip()
        ]

    baseline = None
    quick = args.quick
    seed = args.seed
    if args.check:
        try:
            baseline = load_manifest(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"ERROR: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        cfg = baseline.get("config", {})
        quick = quick or bool(cfg.get("quick", False))
        if args.seed == DEFAULT_SEED and "seed" in cfg:
            seed = int(cfg["seed"])
        if scenarios is None and cfg.get("scenarios"):
            scenarios = list(cfg["scenarios"])

    mode = "check against " + args.baseline if args.check else "baseline run"
    print(f"repro-serve-bench: {mode} (seed={seed} quick={quick})")
    try:
        manifest = run_serve_bench(
            scenarios, seed=seed, quick=quick, echo=True
        )
    except ValueError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 2
    print(render_summary(manifest))

    if args.out:
        write_manifest(manifest, args.out)
        print(f"[serve manifest written to {args.out}]")
    elif not args.check:
        write_manifest(manifest, args.baseline)
        print(f"[serve baseline written to {args.baseline}]")

    if manifest.get("failures"):
        print(
            f"ERROR: scenario(s) failed: {', '.join(manifest['failures'])}",
            file=sys.stderr,
        )
        if not args.check:
            return 1
    if not args.check:
        return 0
    if scenarios:
        baseline = dict(baseline)
        baseline["benchmarks"] = {
            name: rec
            for name, rec in baseline.get("benchmarks", {}).items()
            if name in manifest["benchmarks"]
        }
    diff = diff_manifests(
        baseline,
        manifest,
        # one generous relative tolerance: load-dependent latency and
        # throughput get headroom, while the structural gates stay
        # sharp — errors=0 regresses on any single error, and a
        # scenario with any failed request raises, which is a status
        # regression regardless of tolerance
        accuracy_tolerance=args.tolerance,
        runtime_tolerance=args.tolerance,
        min_runtime_seconds=1.0,
    )
    print(diff.render())
    return 0 if diff.ok else 1


def perf_main(argv: list[str] | None = None) -> int:
    """``repro-perf`` — run the standing perf suite / gate on a baseline."""
    from .bench.perf import (
        CASES,
        DEFAULT_BASELINE,
        DEFAULT_MIN_RUNTIME_SECONDS,
        DEFAULT_REPEATS,
        DEFAULT_RUNTIME_TOLERANCE,
        render_suite,
        run_suite,
    )
    from .obs.report import diff_manifests, load_manifest, write_manifest

    parser = argparse.ArgumentParser(
        prog="repro-perf",
        description="deterministic performance-baseline suite: fig3 "
                    "cold/warm, lowering throughput, the simulator hot "
                    "loop, and a seeded fuzz sweep — with profiler "
                    "attribution shares in every record",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="re-run the suite with the baseline's configuration and "
             "exit nonzero on wall-clock or attribution regressions "
             "(the baseline file is never rewritten)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=DEFAULT_BASELINE,
        help=f"baseline manifest for --check (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="where to write the fresh manifest (default: the baseline "
             "path, or only printed in --check mode)",
    )
    parser.add_argument(
        "--cases",
        metavar="NAMES",
        help=f"comma-separated subset of the cases (default: all; "
             f"known: {', '.join(CASES)})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink every case (~10x faster; smoke tests and quick "
             "local gates — baselines and checks must agree on this)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        metavar="N",
        help=f"runs per case, best (minimum) wall time wins "
             f"(default: {DEFAULT_REPEATS})",
    )
    parser.add_argument(
        "--runtime-tolerance",
        type=float,
        default=DEFAULT_RUNTIME_TOLERANCE,
        metavar="REL",
        help="relative growth tolerated on wall times and stats before "
             f"--check flags a regression (default: "
             f"{DEFAULT_RUNTIME_TOLERANCE})",
    )
    parser.add_argument(
        "--min-runtime-seconds",
        type=float,
        default=DEFAULT_MIN_RUNTIME_SECONDS,
        metavar="SECONDS",
        dest="min_runtime_seconds",
        help="noise floor: case wall times below this never regress "
             f"(default: {DEFAULT_MIN_RUNTIME_SECONDS})",
    )
    parser.add_argument(
        "--inject-slowdown",
        type=float,
        default=0.0,
        metavar="SECONDS",
        dest="inject_slowdown",
        help="add artificial seconds to every measured case — proves "
             "the --check gate fails when it should (self-test hook)",
    )
    args = parser.parse_args(argv)
    if args.repeats is not None and args.repeats < 1:
        parser.error("--repeats must be >= 1")
    cases = None
    if args.cases:
        cases = [s.strip() for s in args.cases.split(",") if s.strip()]
        unknown = [c for c in cases if c not in CASES]
        if unknown:
            parser.error(
                f"unknown case(s) {', '.join(unknown)}; known: "
                f"{', '.join(CASES)}"
            )

    baseline = None
    quick = args.quick
    repeats = args.repeats
    if args.check:
        try:
            baseline = load_manifest(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"ERROR: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        # the comparison is only meaningful on the baseline's own
        # workload; explicit flags still override
        cfg = baseline.get("config", {})
        quick = quick or bool(cfg.get("quick", False))
        if repeats is None:
            repeats = int(cfg.get("repeats", DEFAULT_REPEATS))
        if cases is None and cfg.get("cases"):
            cases = list(cfg["cases"])
    if repeats is None:
        repeats = DEFAULT_REPEATS

    mode = "check against " + args.baseline if args.check else "baseline run"
    print(
        f"repro-perf: {mode} "
        f"(cases={','.join(cases) if cases else 'all'} "
        f"quick={quick} repeats={repeats})"
    )
    try:
        manifest = run_suite(
            cases=cases,
            quick=quick,
            repeats=repeats,
            inject_slowdown=args.inject_slowdown,
            echo=lambda msg: print(msg, flush=True),
        )
    except ValueError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 2
    print(render_suite(manifest))

    if args.out:
        write_manifest(manifest, args.out)
        print(f"[perf manifest written to {args.out}]")
    elif not args.check:
        write_manifest(manifest, args.baseline)
        print(f"[perf baseline written to {args.baseline}]")

    if not args.check:
        return 0
    if args.cases:
        # a targeted subset gate compares only what it ran — don't flag
        # the deliberately skipped cases as missing
        baseline = dict(baseline)
        baseline["benchmarks"] = {
            name: rec
            for name, rec in baseline.get("benchmarks", {}).items()
            if name in manifest["benchmarks"]
        }
    diff = diff_manifests(
        baseline,
        manifest,
        # one relative tolerance for everything: deterministic work.*
        # counters pass it trivially, throughputs and attribution
        # shares get the same noise allowance as wall times
        accuracy_tolerance=args.runtime_tolerance,
        runtime_tolerance=args.runtime_tolerance,
        min_runtime_seconds=args.min_runtime_seconds,
    )
    print(diff.render())
    return 0 if diff.ok else 1


def _jsonable(obj):
    """Recursively convert dataclasses/tuples to JSON-safe structures."""
    from .obs.report import jsonable

    return jsonable(obj)


def _run_verify() -> None:
    """Model self-check: measure a sample of every entry (ibench-style)
    and flag data inconsistencies."""
    from .bench.ibench import verify_model
    from .machine import available_models, get_machine_model

    for name in available_models():
        model = get_machine_model(name)
        report = verify_model(model, sample_every=7)
        status = "OK" if not report["violations"] else "INCONSISTENT"
        print(
            f"{name:14s} checked {report['checked']:4d} entries "
            f"(skipped {report['skipped']}): {status}"
        )
        for v in report["violations"]:
            print(f"    VIOLATION: {v}")
        for s in report["interference"][:5]:
            print(f"    note (slower than bound, likely chain-bound): {s}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(analyze_main())
