"""The three built-in prediction backends.

Each wraps one pre-existing predictor behind the :class:`.base.Backend`
protocol.  The heavy imports are deferred into ``predict`` bodies so
that importing the registry costs nothing and engine workers only pay
for the backend they actually run.

==========  ============================================  ==============
name        wraps                                         headline
==========  ============================================  ==============
``model``   :func:`repro.analysis.analyze_instructions`   lower bound
``mca``     :class:`repro.mca.MCASimulator`               MCA baseline
``sim``     :class:`repro.simulator.CoreSimulator`        measurement
==========  ============================================  ==============
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from .base import BackendResult, register_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..lowering import LoweredBlock


@register_backend
class ModelBackend:
    """OSACA-style static throughput/latency lower bound."""

    name = "model"
    version = "1"

    def predict(
        self,
        block: "LoweredBlock",
        *,
        optimal_binding: bool = True,
        respect_merge_dependency: bool = True,
        **_: Any,
    ) -> BackendResult:
        from ..analysis.throughput import analyze_instructions

        ana = analyze_instructions(
            block.instructions,
            block.model,
            optimal_binding=optimal_binding,
            respect_merge_dependency=respect_merge_dependency,
            resolved=block.resolved,
        )
        return BackendResult(
            backend=self.name,
            version=self.version,
            cycles_per_iteration=ana.prediction,
            bottleneck=ana.bottleneck,
            detail=ana,
            stats={
                "throughput_bound": ana.throughput_bound,
                "lcd": ana.lcd,
                "critical_path": ana.critical_path,
            },
        )


@register_backend
class MCABackend:
    """LLVM-MCA-style baseline on generic scheduling data."""

    name = "mca"
    version = "1"

    def predict(
        self,
        block: "LoweredBlock",
        *,
        iterations: int = 100,
        warmup: int = 20,
        sched: Optional[dict] = None,
        assume_noalias: bool = True,
        **_: Any,
    ) -> BackendResult:
        from ..mca import MCASchedData, MCASimulator

        data = MCASchedData(block.model, **sched) if sched else None
        r = MCASimulator(block.model, data, assume_noalias=assume_noalias).run(
            block.instructions, iterations=iterations, warmup=warmup
        )
        return BackendResult(
            backend=self.name,
            version=self.version,
            cycles_per_iteration=r.cycles_per_iteration,
            detail=r,
            stats={"uops_per_iteration": r.uops_per_iteration},
        )


@register_backend
class SimBackend:
    """Cycle-level core simulator — the hardware stand-in."""

    name = "sim"
    version = "1"

    def predict(
        self,
        block: "LoweredBlock",
        *,
        iterations: int = 200,
        warmup: int = 50,
        tracer=None,
        collect_stalls: bool = False,
        **sim_kwargs: Any,
    ) -> BackendResult:
        from ..simulator.core import CoreSimulator

        sim = CoreSimulator(block.model, **sim_kwargs)
        r = sim.run(
            block.instructions,
            iterations=iterations,
            warmup=warmup,
            tracer=tracer,
            collect_stalls=collect_stalls,
            resolved=block.resolved,
        )
        return BackendResult(
            backend=self.name,
            version=self.version,
            cycles_per_iteration=r.cycles_per_iteration,
            detail=r,
            stats={
                "total_cycles": r.total_cycles,
                "instructions_retired": r.instructions_retired,
                "ipc": r.ipc,
            },
        )
