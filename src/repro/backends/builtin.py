"""The built-in prediction backends.

Each wraps one pre-existing predictor behind the :class:`.base.Backend`
protocol.  The heavy imports are deferred into ``predict`` bodies so
that importing the registry costs nothing and engine workers only pay
for the backend they actually run.

============  ==============================================  ==============
name          wraps                                           headline
============  ==============================================  ==============
``model``     :func:`repro.analysis.analyze_instructions`     lower bound
``mca``       :class:`repro.mca.MCASimulator`                 MCA baseline
``sim``       :class:`repro.simulator.CoreSimulator`          measurement
``fastpath``  :func:`repro.simulator.predict_steady_state`    fast measurement
============  ==============================================  ==============

``fastpath`` answers from the analytical steady-state engine when its
confidence predicate holds and falls back to the cycle-accurate engine
otherwise, so it is a drop-in (within-tolerance) replacement for
``sim`` wherever only ``cycles_per_iteration`` is consumed.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import replace
from typing import TYPE_CHECKING, Any, Optional

from .base import BackendResult, register_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..lowering import LoweredBlock


@register_backend
class ModelBackend:
    """OSACA-style static throughput/latency lower bound."""

    name = "model"
    version = "1"

    def predict(
        self,
        block: "LoweredBlock",
        *,
        optimal_binding: bool = True,
        respect_merge_dependency: bool = True,
        **_: Any,
    ) -> BackendResult:
        from ..analysis.throughput import analyze_instructions

        ana = analyze_instructions(
            block.instructions,
            block.model,
            optimal_binding=optimal_binding,
            respect_merge_dependency=respect_merge_dependency,
            resolved=block.resolved,
        )
        return BackendResult(
            backend=self.name,
            version=self.version,
            cycles_per_iteration=ana.prediction,
            bottleneck=ana.bottleneck,
            detail=ana,
            stats={
                "throughput_bound": ana.throughput_bound,
                "lcd": ana.lcd,
                "critical_path": ana.critical_path,
            },
        )


@register_backend
class MCABackend:
    """LLVM-MCA-style baseline on generic scheduling data."""

    name = "mca"
    version = "1"

    def predict(
        self,
        block: "LoweredBlock",
        *,
        iterations: int = 100,
        warmup: int = 20,
        sched: Optional[dict] = None,
        assume_noalias: bool = True,
        **_: Any,
    ) -> BackendResult:
        from ..mca import MCASchedData, MCASimulator

        data = MCASchedData(block.model, **sched) if sched else None
        r = MCASimulator(block.model, data, assume_noalias=assume_noalias).run(
            block.instructions, iterations=iterations, warmup=warmup
        )
        return BackendResult(
            backend=self.name,
            version=self.version,
            cycles_per_iteration=r.cycles_per_iteration,
            detail=r,
            stats={"uops_per_iteration": r.uops_per_iteration},
        )


@register_backend
class SimBackend:
    """Cycle-level core simulator — the hardware stand-in."""

    name = "sim"
    version = "1"

    def predict(
        self,
        block: "LoweredBlock",
        *,
        iterations: int = 200,
        warmup: int = 50,
        tracer=None,
        collect_stalls: bool = False,
        **sim_kwargs: Any,
    ) -> BackendResult:
        from ..simulator.core import CoreSimulator

        sim = CoreSimulator(block.model, **sim_kwargs)
        r = sim.run(
            block.instructions,
            iterations=iterations,
            warmup=warmup,
            tracer=tracer,
            collect_stalls=collect_stalls,
            resolved=block.resolved,
        )
        return BackendResult(
            backend=self.name,
            version=self.version,
            cycles_per_iteration=r.cycles_per_iteration,
            detail=r,
            stats={
                "total_cycles": r.total_cycles,
                "instructions_retired": r.instructions_retired,
                "ipc": r.ipc,
            },
        )


@register_backend
class FastpathBackend:
    """Analytical steady state when trusted, cycle-accurate otherwise.

    The dispatch policy of the staged simulator pipeline (see
    ``docs/architecture.md``):
    :func:`~repro.simulator.steadystate.predict_steady_state` probes
    the plan's limit cycle and answers when its confidence predicate
    holds; anything it cannot vouch for is re-run on the full
    :class:`~repro.simulator.engine.CycleEngine`.  Either way the
    answer tracks the ``sim`` backend within the documented tier
    tolerances (exactly, for certified/simulated/fallback units).

    Results are memoized per ``(block identity, plan config,
    measurement window)``: the prediction is a pure function of the
    plan (property-tested in ``test_steadystate.py``), and corpus
    sweeps repeat identical lowered blocks across compiler personas —
    416 fig3 units collapse to 153 distinct plans.

    ``tracer``/``collect_stalls`` requests force the cycle engine:
    observability is cycle-accurate by definition.
    """

    name = "fastpath"
    version = "1"

    _MEMO_CAP = 4096

    def __init__(self) -> None:
        self._memo: OrderedDict[tuple, BackendResult] = OrderedDict()

    def predict(
        self,
        block: "LoweredBlock",
        *,
        iterations: int = 200,
        warmup: int = 50,
        tracer=None,
        collect_stalls: bool = False,
        **sim_kwargs: Any,
    ) -> BackendResult:
        from ..simulator.engine import CycleEngine
        from ..simulator.plan import PlanConfig, plan_for_block
        from ..simulator.steadystate import predict_steady_state

        cfg = PlanConfig.make(**sim_kwargs)
        plan = plan_for_block(block, cfg)

        if tracer is not None or collect_stalls:
            r = CycleEngine().run(
                plan,
                iterations=iterations,
                warmup=warmup,
                tracer=tracer,
                collect_stalls=collect_stalls,
            )
            return BackendResult(
                backend=self.name,
                version=self.version,
                cycles_per_iteration=r.cycles_per_iteration,
                detail=r,
                stats={
                    "fastpath_hit": False,
                    "reason": "observability",
                    "total_cycles": r.total_cycles,
                },
            )

        key = (block.key, cfg, iterations, warmup)
        cached = self._memo.get(key)
        if cached is not None:
            self._memo.move_to_end(key)
            return replace(cached, stats=dict(cached.stats))

        ss = predict_steady_state(plan, iterations=iterations, warmup=warmup)
        if ss.confident:
            result = BackendResult(
                backend=self.name,
                version=self.version,
                cycles_per_iteration=ss.cycles_per_iteration,
                bottleneck=ss.bound.bottleneck,
                detail=ss,
                stats={
                    "fastpath_hit": True,
                    "reason": ss.reason,
                    "probe_iterations": ss.probe_iterations,
                    "period": ss.period,
                    "bound": ss.bound.bound,
                },
            )
        else:
            r = CycleEngine().run(plan, iterations=iterations, warmup=warmup)
            result = BackendResult(
                backend=self.name,
                version=self.version,
                cycles_per_iteration=r.cycles_per_iteration,
                detail=r,
                stats={
                    "fastpath_hit": False,
                    "reason": ss.reason,
                    "probe_iterations": ss.probe_iterations,
                    "total_cycles": r.total_cycles,
                },
            )
        self._memo[key] = result
        while len(self._memo) > self._MEMO_CAP:
            self._memo.popitem(last=False)
        return replace(result, stats=dict(result.stats))
