"""``repro.backends`` — pluggable prediction backends over one front-end.

The lowering pipeline (:mod:`repro.lowering`) parses and resolves an
assembly block once; every registered backend then predicts from the
same :class:`~repro.lowering.LoweredBlock`::

    from repro.backends import get_backend, predict
    from repro.lowering import lower

    block = lower(asm_text, "zen4")
    r = get_backend("model").predict(block)          # explicit
    r = predict(asm_text, "zen4", backend="mca")     # convenience
    table = predict_all(asm_text, "zen4")            # all three views

Writing a new backend is one registered class — see
``docs/architecture.md``.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Union

from .base import (
    KIND_BACKENDS,
    Backend,
    BackendResult,
    available_backends,
    backend_version,
    get_backend,
    register_backend,
    unit_backends,
    unregister_backend,
    versions_for_unit,
)
from . import builtin as _builtin  # noqa: F401  (registers model/mca/sim)


def predict(
    source: str,
    arch,
    *,
    backend: str = "model",
    **opts: Any,
) -> BackendResult:
    """Lower *source* against *arch* and run one backend."""
    from ..lowering import lower

    return get_backend(backend).predict(lower(source, arch), **opts)


def predict_all(
    source: str,
    arch,
    *,
    backends: Optional[Sequence[str]] = None,
    opts: Optional[dict[str, dict[str, Any]]] = None,
) -> dict[str, BackendResult]:
    """Run several backends over one lowered block, side by side.

    ``opts`` maps backend name → keyword options for its ``predict``.
    Backends run in the given order (default: every registered backend,
    alphabetically) but share a single lowering.
    """
    from ..lowering import lower

    names = list(backends) if backends is not None else available_backends()
    block = lower(source, arch)
    per = opts or {}
    return {
        name: get_backend(name).predict(block, **per.get(name, {}))
        for name in names
    }


__all__ = [
    "KIND_BACKENDS",
    "Backend",
    "BackendResult",
    "available_backends",
    "backend_version",
    "get_backend",
    "predict",
    "predict_all",
    "register_backend",
    "unit_backends",
    "unregister_backend",
    "versions_for_unit",
]
