"""Prediction-backend protocol and registry.

A *backend* is one way of turning a lowered assembly block into a
cycles-per-iteration estimate.  The three the paper compares — the
OSACA-style static model, the LLVM-MCA-style baseline, and the
cycle-level core simulator standing in for hardware — are registered
here as ``model``, ``mca``, and ``sim`` (:mod:`.builtin`); a new
predictor (a uiCA-style simulator, a learned model) is one registered
class away (see ``docs/architecture.md``).

Backends consume :class:`~repro.lowering.LoweredBlock` — parsing and
machine-model resolution happen exactly once in the shared lowering
pipeline, never inside a backend.

Every backend carries a ``version`` string that participates in the
engine's cache key: bump it on any semantic change so memoized results
from the old behaviour can never be served for the new one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..lowering import LoweredBlock


@dataclass
class BackendResult:
    """What every backend returns, whatever its internals.

    ``cycles_per_iteration`` is the headline number the corpus
    comparisons consume; ``detail`` carries the backend's native result
    object (:class:`~repro.analysis.AnalysisResult`,
    :class:`~repro.mca.MCAResult`,
    :class:`~repro.simulator.SimulationResult`) for callers that want
    more; ``stats`` is a plain-JSON bag safe to cross process and cache
    boundaries.
    """

    backend: str
    version: str
    cycles_per_iteration: float
    bottleneck: Optional[str] = None
    detail: Any = None
    stats: dict[str, Any] = field(default_factory=dict)


@runtime_checkable
class Backend(Protocol):
    """The pluggable prediction interface."""

    name: str
    version: str

    def predict(self, block: "LoweredBlock", **opts: Any) -> BackendResult:
        """Predict steady-state cycles/iteration for a lowered block."""
        ...  # pragma: no cover - protocol


_BACKEND_CLASSES: dict[str, type] = {}
_INSTANCES: dict[str, Backend] = {}


def register_backend(cls: type) -> type:
    """Class decorator: register a :class:`Backend` implementation.

    The class must define ``name`` and ``version`` attributes and a
    ``predict`` method; registration is by ``name`` and duplicate names
    are an error (unregister first to replace).
    """
    name = getattr(cls, "name", None)
    if not name or not isinstance(name, str):
        raise ValueError(f"backend class {cls.__name__} needs a 'name' string")
    if not isinstance(getattr(cls, "version", None), str):
        raise ValueError(f"backend {name!r} needs a 'version' string")
    if not callable(getattr(cls, "predict", None)):
        raise ValueError(f"backend {name!r} needs a predict() method")
    if name in _BACKEND_CLASSES:
        raise ValueError(f"backend {name!r} already registered")
    _BACKEND_CLASSES[name] = cls
    return cls


def unregister_backend(name: str) -> None:
    """Remove a registered backend (tests; plugin teardown)."""
    _BACKEND_CLASSES.pop(name, None)
    _INSTANCES.pop(name, None)


def get_backend(name: str) -> Backend:
    """Return the (singleton) backend instance for *name*."""
    inst = _INSTANCES.get(name)
    if inst is None:
        try:
            cls = _BACKEND_CLASSES[name]
        except KeyError:
            raise ValueError(
                f"unknown backend {name!r}; known: {available_backends()}"
            ) from None
        inst = _INSTANCES[name] = cls()
    return inst


def available_backends() -> list[str]:
    """Sorted names of every registered backend."""
    return sorted(_BACKEND_CLASSES)


def backend_version(name: str) -> str:
    return get_backend(name).version


# -- engine integration ----------------------------------------------------

#: which backends each engine work-unit kind dispatches to; the cache
#: key digests these backends' versions so refactored results never
#: collide with stale entries (see repro.engine.cachekey)
KIND_BACKENDS: dict[str, tuple[str, ...]] = {
    "corpus": ("mca", "model", "sim"),
    "analyze_simulate": ("model", "sim"),
    "simulate": ("sim",),
    "mca": ("mca",),
    "topdown": ("sim",),
}


def unit_backends(kind: str, params: dict) -> tuple[str, ...]:
    """The backend names a work unit of *kind* will dispatch to.

    A corpus unit running with ``engine: "fastpath"`` dispatches its
    measurement slot to the ``fastpath`` backend instead of ``sim``;
    the substitution must be visible here so the cache key digests the
    fastpath version (and invalidates on its bumps), never the unused
    sim version.
    """
    if kind == "predict":
        b = params.get("backend")
        return (b,) if b else ()
    if kind == "corpus":
        names = (
            tuple(sorted(params["backends"]))
            if params.get("backends")
            else KIND_BACKENDS["corpus"]
        )
        if params.get("engine") == "fastpath":
            names = tuple(
                sorted("fastpath" if n == "sim" else n for n in names)
            )
        return names
    return KIND_BACKENDS.get(kind, ())


def versions_for_unit(kind: str, params: dict) -> dict[str, str]:
    """``{backend name: version}`` for a unit, for cache-key digestion.

    Unknown backend names map to ``"?"`` rather than raising — the key
    must still be computable (the evaluator will raise the real error).
    """
    out: dict[str, str] = {}
    for name in unit_backends(kind, params):
        try:
            out[name] = backend_version(name)
        except ValueError:
            out[name] = "?"
    return out


PredictFn = Callable[..., BackendResult]
