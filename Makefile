# Convenience targets for the reproduction workflow.

PY ?= python

# targets work from a checkout without `make install`
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: install lint test test-fast test-chaos test-fuzz test-serve fuzz bench report verify perf perf-check serve-bench serve-check serve-demo all-figures trace-demo clean

install:
	pip install -e . --no-build-isolation

# ruff (config in pyproject.toml); skipped with a notice when the tool
# is not installed, so a bare container can still run the test targets
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src/ tests/ benchmarks/; \
	else \
		echo "lint: ruff not installed, skipping (pip install ruff)"; \
	fi

# everything, including @pytest.mark.slow full-corpus sweeps and the
# @pytest.mark.chaos fault-injection suite
test:
	$(PY) -m pytest tests/ -m ""

# the default developer loop: lint + slow/chaos/fuzz/serve-marked tests deselected
test-fast: lint
	$(PY) -m pytest tests/ -m "not slow and not chaos and not fuzz and not serve"

# the robustness suite alone: deterministic fault injection, worker
# kills, hang timeouts (see docs/robustness.md)
test-chaos:
	$(PY) -m pytest tests/ -m chaos

# the differential-fuzzing suite, including the slow-marked
# 1,000-kernel smoke sweep (see docs/fuzzing.md)
test-fuzz:
	$(PY) -m pytest tests/ -m fuzz

# the serving-daemon suite: real sockets, load generation, serving
# chaos scenarios (see docs/serving.md)
test-serve:
	$(PY) -m pytest tests/ -m serve

# ad-hoc differential sweep; override e.g. `make fuzz SEED=7 COUNT=20000 JOBS=8`
SEED ?= 42
COUNT ?= 5000
JOBS ?= 4
fuzz:
	$(PY) -c "from repro.cli import fuzz_main; import sys; sys.exit(fuzz_main(['--seed','$(SEED)','--count','$(COUNT)','--jobs','$(JOBS)']))"

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

report:
	$(PY) -c "from repro.bench.report import generate_report; print(generate_report('REPORT.md'))"

# model self-check + the standing perf and serving gates against the
# committed BENCH_perf.json / BENCH_serve.json baselines
# (see docs/observability.md and docs/serving.md)
verify: perf-check serve-check
	$(PY) -c "from repro.cli import bench_main; bench_main(['verify'])"

# regenerate the committed perf baseline (run on the machine that will
# later gate with perf-check; the manifest records best-of-repeats)
perf:
	$(PY) -c "from repro.cli import perf_main; import sys; sys.exit(perf_main([]))"

# gate: re-run the suite with the baseline's config, fail on wall-clock
# or attribution-share regressions past the noise floor
perf-check:
	$(PY) -c "from repro.cli import perf_main; import sys; sys.exit(perf_main(['--check']))"

# regenerate the committed serving baseline (real daemon, real sockets)
serve-bench:
	$(PY) -c "from repro.cli import serve_bench_main; import sys; sys.exit(serve_bench_main([]))"

# gate: replay the serving scenarios with the baseline's config; any
# availability/error regression or lost backpressure fails the build
serve-check:
	$(PY) -c "from repro.cli import serve_bench_main; import sys; sys.exit(serve_bench_main(['--check']))"

# quick demo: spin up a daemon, fire the hot-path load scenario at it,
# print the req/s + latency summary
serve-demo:
	$(PY) -c "from repro.serve.loadgen import run_serve_bench, render_summary; print(render_summary(run_serve_bench(['serve_hot'], quick=True, echo=True)))"

all-figures:
	$(PY) -c "from repro.cli import bench_main; bench_main(['all'])"

# sample pipeline trace (open trace-demo.json in https://ui.perfetto.dev)
trace-demo:
	$(PY) -c "from repro.cli import analyze_main; analyze_main(['examples/triad.s', '--arch', 'genoa', '--trace', 'trace-demo.json'])"

outputs:
	$(PY) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PY) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks .repro-cache trace-demo.json
	find . -name __pycache__ -type d -exec rm -rf {} +
