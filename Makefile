# Convenience targets for the reproduction workflow.

PY ?= python

# targets work from a checkout without `make install`
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: install lint test test-fast test-chaos test-fuzz fuzz bench report verify perf perf-check all-figures trace-demo clean

install:
	pip install -e . --no-build-isolation

# ruff (config in pyproject.toml); skipped with a notice when the tool
# is not installed, so a bare container can still run the test targets
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src/ tests/ benchmarks/; \
	else \
		echo "lint: ruff not installed, skipping (pip install ruff)"; \
	fi

# everything, including @pytest.mark.slow full-corpus sweeps and the
# @pytest.mark.chaos fault-injection suite
test:
	$(PY) -m pytest tests/ -m ""

# the default developer loop: lint + slow/chaos/fuzz-marked tests deselected
test-fast: lint
	$(PY) -m pytest tests/ -m "not slow and not chaos and not fuzz"

# the robustness suite alone: deterministic fault injection, worker
# kills, hang timeouts (see docs/robustness.md)
test-chaos:
	$(PY) -m pytest tests/ -m chaos

# the differential-fuzzing suite, including the slow-marked
# 1,000-kernel smoke sweep (see docs/fuzzing.md)
test-fuzz:
	$(PY) -m pytest tests/ -m fuzz

# ad-hoc differential sweep; override e.g. `make fuzz SEED=7 COUNT=20000 JOBS=8`
SEED ?= 42
COUNT ?= 5000
JOBS ?= 4
fuzz:
	$(PY) -c "from repro.cli import fuzz_main; import sys; sys.exit(fuzz_main(['--seed','$(SEED)','--count','$(COUNT)','--jobs','$(JOBS)']))"

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

report:
	$(PY) -c "from repro.bench.report import generate_report; print(generate_report('REPORT.md'))"

# model self-check + the standing perf gate against the committed
# BENCH_perf.json baseline (see docs/observability.md)
verify: perf-check
	$(PY) -c "from repro.cli import bench_main; bench_main(['verify'])"

# regenerate the committed perf baseline (run on the machine that will
# later gate with perf-check; the manifest records best-of-repeats)
perf:
	$(PY) -c "from repro.cli import perf_main; import sys; sys.exit(perf_main([]))"

# gate: re-run the suite with the baseline's config, fail on wall-clock
# or attribution-share regressions past the noise floor
perf-check:
	$(PY) -c "from repro.cli import perf_main; import sys; sys.exit(perf_main(['--check']))"

all-figures:
	$(PY) -c "from repro.cli import bench_main; bench_main(['all'])"

# sample pipeline trace (open trace-demo.json in https://ui.perfetto.dev)
trace-demo:
	$(PY) -c "from repro.cli import analyze_main; analyze_main(['examples/triad.s', '--arch', 'genoa', '--trace', 'trace-demo.json'])"

outputs:
	$(PY) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PY) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks .repro-cache trace-demo.json
	find . -name __pycache__ -type d -exec rm -rf {} +
