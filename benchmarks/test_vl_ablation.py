"""What-if ablation: Grace with 256-bit SVE.

SVE code is vector-length agnostic, so the corpus' SVE kernels run
unchanged on a widened model.  Expectation: compute-bound vector
kernels halve their per-element cost; frontend/latency-bound and scalar
kernels do not move.
"""

import pytest

from repro.analysis import analyze_instructions
from repro.isa import parse_kernel
from repro.kernels import generate_assembly
from repro.kernels.suite import KERNELS
from repro.machine import get_machine_model
from repro.machine.whatif import elements_per_vector, widen_neoverse_v2
from repro.simulator.core import CoreSimulator


def per_element_cycles(model, kernel, opt="O2"):
    asm = generate_assembly(KERNELS[kernel], "gcc-arm", opt, "neoverse_v2")
    instrs = parse_kernel(asm, "aarch64")
    meas = CoreSimulator(
        model, issue_efficiency=1.0, dispatch_efficiency=1.0,
        measurement_overhead=0.0,
    ).run(instrs, iterations=80, warmup=25)
    return meas.cycles_per_iteration / elements_per_vector(model)


def test_vl256_ablation(benchmark):
    base = get_machine_model("neoverse_v2")
    wide = widen_neoverse_v2(2)
    assert elements_per_vector(wide) == 4

    def sweep():
        out = {}
        for kernel in ("striad", "j2d5pt", "sch_triad", "update"):
            out[kernel] = (
                per_element_cycles(base, kernel),
                per_element_cycles(wide, kernel),
            )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for kernel, (narrow, wide_cy) in results.items():
        # the same SVE code processes 2x the elements per iteration at
        # unchanged per-iteration cost -> per-element cost halves
        assert wide_cy == pytest.approx(narrow / 2, rel=0.1), kernel


def test_vl256_does_not_help_scalar_code():
    base = get_machine_model("neoverse_v2")
    wide = widen_neoverse_v2(2)
    asm = generate_assembly(KERNELS["gs2d5pt"], "gcc-arm", "O2", "neoverse_v2")
    instrs = parse_kernel(asm, "aarch64")
    a = analyze_instructions(instrs, base).prediction
    b = analyze_instructions(instrs, wide).prediction
    assert a == b  # latency chain, untouched by datapath width


def test_vl256_closes_the_gap_to_genoa():
    """With VL=256 the V2's vector ADD rate matches Zen 4's 8 elem/cy
    and doubles toward Golden Cove's 16."""
    wide = widen_neoverse_v2(2)
    asm = ".L:\n" + "\n".join(
        f"    fadd z{d}.d, z30.d, z31.d" for d in range(16)
    ) + "\n    subs x15, x15, #1\n    b.ne .L\n"
    instrs = parse_kernel(asm, "aarch64")
    meas = CoreSimulator(
        wide, issue_efficiency=1.0, dispatch_efficiency=1.0,
        measurement_overhead=0.0,
    ).run(instrs, iterations=80, warmup=25)
    elems_per_cycle = 16 * elements_per_vector(wide) / meas.cycles_per_iteration
    assert elems_per_cycle == pytest.approx(16.0, rel=0.05)


def test_factor_validation():
    with pytest.raises(ValueError):
        widen_neoverse_v2(3)
