"""Benchmarks beyond the paper: extended kernels, scaling, coupled sim.

These regenerate the extension studies DESIGN.md lists (node-level
scaling crossovers, memory-coupled ECM validation, extended-suite
sweep) and double as performance benchmarks of the pipeline itself.
"""

import pytest

from repro.analysis import analyze_instructions
from repro.analysis.scaling import predict_scaling
from repro.engine import CorpusEngine, WorkUnit
from repro.isa import parse_kernel
from repro.kernels import generate_assembly
from repro.kernels.extended import EXTENDED_KERNELS, all_kernels
from repro.kernels.suite import KERNELS
from repro.machine import get_chip_spec, get_machine_model
from repro.simulator.core import CoreSimulator
from repro.simulator.coupled import simulate_with_memory


def test_extended_suite_sweep(benchmark):
    """Analyze + simulate every extended kernel on every machine —
    submitted through the corpus engine as one batch."""

    def sweep():
        cases = []
        units = []
        for name, k in EXTENDED_KERNELS.items():
            for uarch, persona in (
                ("golden_cove", "gcc"),
                ("zen4", "clang"),
                ("neoverse_v2", "gcc-arm"),
            ):
                asm = generate_assembly(k, persona, "O2", uarch)
                cases.append((name, uarch))
                units.append(
                    WorkUnit.make(
                        "analyze_simulate",
                        label=f"{uarch}/{name}",
                        uarch=uarch,
                        assembly=asm,
                        iterations=60,
                        warmup=20,
                    )
                )
        outputs = CorpusEngine(jobs=1).run(units)
        return [
            (name, uarch, out["prediction"], out["measurement"])
            for (name, uarch), out in zip(cases, outputs)
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(rows) == len(EXTENDED_KERNELS) * 3
    # the lower-bound contract holds on the extended suite too — with
    # the one documented exception class: scalar-divide-bound kernels
    # on Zen 4, whose divider beats its documented occupancy (the
    # paper's pi-kernel effect; rel_residual divides too)
    for name, uarch, pred, meas in rows:
        if uarch == "zen4" and EXTENDED_KERNELS[name].has_division:
            assert pred <= meas * 1.3, (name, uarch)
            continue
        assert pred <= meas * 1.001, (name, uarch)


def test_scaling_crossovers(benchmark):
    """Chip-vs-chip winners per kernel class (DESIGN.md ablation)."""

    def winners():
        out = {}
        for name, opt in (("striad", "O2"), ("pi", "Ofast"), ("horner8", "O2")):
            k = all_kernels()[name]
            perf = {
                chip: predict_scaling(k, chip, opt=opt).points[-1].performance_gflops
                for chip in ("gcs", "spr", "genoa")
            }
            out[name] = max(perf, key=perf.get)
        return out

    w = benchmark.pedantic(winners, rounds=1, iterations=1)
    # memory-bound: bandwidth ordering (Table I) puts GCS first
    assert w["striad"] == "gcs"
    # divide-throughput-bound: Genoa's 96 cores x best divider wins
    assert w["pi"] == "genoa"


def test_coupled_memory_levels(benchmark):
    """Cycles grow monotonically as data moves out in the hierarchy."""

    def run_levels():
        return {
            lv: simulate_with_memory(
                KERNELS["striad"], "genoa", level=lv
            ).cycles_per_iteration
            for lv in ("L1", "L2", "L3", "MEM")
        }

    cy = benchmark.pedantic(run_levels, rounds=1, iterations=1)
    assert cy["L1"] <= cy["L2"] <= cy["L3"] <= cy["MEM"]
    # memory-resident streaming is dominated by the interface
    assert cy["MEM"] > 10 * cy["L1"]


def test_analysis_pipeline_throughput(benchmark):
    """How fast is one full analyze() call on a mid-size block?"""
    model = get_machine_model("zen4")
    asm = generate_assembly(KERNELS["j3d27pt"], "gcc", "O2", "zen4")
    instrs = parse_kernel(asm, "x86")

    benchmark(lambda: analyze_instructions(instrs, model))


def test_simulation_pipeline_throughput(benchmark):
    model = get_machine_model("zen4")
    asm = generate_assembly(KERNELS["j3d27pt"], "gcc", "O2", "zen4")
    instrs = parse_kernel(asm, "x86")
    sim = CoreSimulator(model)

    benchmark(lambda: sim.run(instrs, iterations=50, warmup=15))
