"""Table II regeneration benchmark: in-core features from the models."""

from repro.bench import table2


def test_table2(benchmark):
    rows = benchmark(table2.run)
    for r in rows:
        ref = table2.PAPER_REFERENCE[r.uarch]
        assert r.ports == ref["ports"]
        assert r.simd_bytes == ref["simd_bytes"]
        assert r.int_units == ref["int_units"]
        assert r.fp_units == ref["fp_units"]
        assert r.loads_per_cycle == ref["loads"]
        assert r.stores_per_cycle == ref["stores"]
