"""Engine throughput benchmark: the memoization acceptance gate.

The full 416-variant corpus sweeps twice — once serial with no cache
(the pre-engine baseline path), once with ``jobs=4`` over a warm
content-addressed cache — and the warm run must be at least **3x**
faster.  In practice hits never touch a worker process, so the warm
sweep is pure cache I/O and clears the bar by an order of magnitude.
"""

import time

from repro.bench import fig3
from repro.engine import CorpusEngine


def test_warm_cache_sweep_is_3x_faster(benchmark, tmp_path):
    t0 = time.perf_counter()
    baseline = fig3.run(engine=CorpusEngine(jobs=1))
    serial_seconds = time.perf_counter() - t0

    eng = CorpusEngine(jobs=4, cache_dir=tmp_path / "cache")
    fig3.run(engine=eng)  # populate
    assert eng.metrics.evaluated == 416

    warm_seconds = []

    def warm_run():
        t = time.perf_counter()
        result = fig3.run(engine=eng)
        warm_seconds.append(time.perf_counter() - t)
        return result

    warm = benchmark.pedantic(warm_run, rounds=1, iterations=1)
    assert eng.metrics.cache_hits == 416 and eng.metrics.evaluated == 0
    assert warm.summary("osaca") == baseline.summary("osaca")

    speedup = serial_seconds / warm_seconds[0]
    assert speedup >= 3.0, (
        f"warm-cache sweep only {speedup:.1f}x faster "
        f"({serial_seconds:.2f}s serial vs {warm_seconds[0]:.2f}s warm)"
    )
