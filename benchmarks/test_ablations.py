"""Ablation benchmarks for the design choices called out in DESIGN.md.

* exact LP port binding vs OSACA's equal-split heuristic (accuracy and
  speed),
* simulator scheduler-window sensitivity,
* SpecI2M bandwidth-threshold sweep,
* MCA scheduling-data ablation: how much of the Fig. 3 gap is *data*
  rather than algorithm.
"""

import dataclasses

import pytest

from repro.analysis.portbinding import (
    assign_ports_heuristic,
    assign_ports_optimal,
)
from repro.engine import CorpusEngine, WorkUnit
from repro.isa import parse_kernel
from repro.kernels import enumerate_corpus
from repro.machine import get_chip_spec, get_machine_model
from repro.machine.io import model_to_dict
from repro.simulator.multicore import run_store_benchmark


@pytest.fixture(scope="module")
def zen4_blocks():
    model = get_machine_model("zen4")
    entries = enumerate_corpus(machines=("genoa",), kernels=("striad", "j3d7pt", "sum"))
    return model, [parse_kernel(e.assembly, "x86") for e in entries]


class TestPortBindingAblation:
    def test_lp_binding_speed(self, benchmark, zen4_blocks):
        model, blocks = zen4_blocks
        resolved = [[model.resolve(i) for i in b] for b in blocks]

        def run_all():
            return [assign_ports_optimal(model, r) for r in resolved]

        benchmark(run_all)

    def test_heuristic_binding_speed(self, benchmark, zen4_blocks):
        model, blocks = zen4_blocks
        resolved = [[model.resolve(i) for i in b] for b in blocks]

        def run_all():
            return [assign_ports_heuristic(model, r) for r in resolved]

        benchmark(run_all)

    def test_lp_tightens_the_bound(self, zen4_blocks):
        """The LP bound is tighter (lower) on at least some corpus blocks
        and never looser."""
        model, blocks = zen4_blocks
        tighter = 0
        for b in blocks:
            r = [model.resolve(i) for i in b]
            lp = assign_ports_optimal(model, r).max_pressure
            heur = assign_ports_heuristic(model, r).max_pressure
            assert lp <= heur + 1e-9
            if lp < heur - 1e-6:
                tighter += 1
        assert tighter >= 1


class TestSchedulerWindowAblation:
    def test_window_sensitivity(self, benchmark):
        """Shrinking the scheduler window raises measured cycles for
        wide dependency trees (backfill opportunity is lost).

        The what-if models go through the engine's ``simulate`` units:
        each perturbed scheduler size yields a distinct model digest, so
        a shared cache can never confuse the variants."""
        model = get_machine_model("zen4")
        asm = enumerate_corpus(machines=("genoa",), kernels=("j3d27pt",))[2].assembly
        engine = CorpusEngine(jobs=1)

        def measure(window):
            m = dataclasses.replace(model, scheduler_size=window,
                                    entries=list(model.entries))
            unit = WorkUnit.make(
                "simulate",
                label=f"zen4/window={window}",
                model=model_to_dict(m),
                assembly=asm,
                iterations=80,
                warmup=20,
            )
            return engine.run([unit])[0]

        big = benchmark.pedantic(measure, args=(160,), rounds=1, iterations=1)
        tiny = measure(4)
        assert tiny["cycles_per_iteration"] >= big["cycles_per_iteration"]


class TestSpecI2MThresholdAblation:
    def test_threshold_sweep(self, benchmark):
        """Lower engagement thresholds move the Fig. 4 crossover left."""
        spec = get_chip_spec("spr")

        def crossover(threshold):
            mem = dataclasses.replace(spec.memory, speci2m_threshold=threshold)
            s = dataclasses.replace(spec, memory=mem)
            for n in range(1, 14):
                r = run_store_benchmark(s, n, working_set_lines=1024)
                if r.traffic_ratio < 1.99:
                    return n
            return 14

        low = benchmark.pedantic(crossover, args=(0.3,), rounds=1, iterations=1)
        high = crossover(0.9)
        assert low < high


class TestMCADataAblation:
    def test_generic_data_is_the_error_source(self, benchmark):
        """Running the MCA *algorithm* with undegraded scheduling data
        predicts strictly faster-or-equal blocks — the slow-side bias of
        Fig. 3 is the scheduling data, not the timeline simulation."""
        entries = enumerate_corpus(machines=("gcs",), kernels=("striad", "j2d5pt", "sum"))
        engine = CorpusEngine(jobs=1)

        def predict_all(sched):
            # sched=None is the degraded default; the overrides dict is
            # part of the cache key, so the two variants never collide
            units = [
                WorkUnit.make(
                    "mca",
                    label=e.test_id,
                    uarch="neoverse_v2",
                    assembly=e.assembly,
                    iterations=60,
                    warmup=15,
                    sched=sched,
                )
                for e in entries
            ]
            return engine.run(units)

        degraded = benchmark.pedantic(
            predict_all, args=(None,), rounds=1, iterations=1
        )
        clean = predict_all(
            dict(sve_pipe_limit=0, fp_port_limit=0,
                 store_uop_inflation=0, drop_throughput_caps=False)
        )
        slower = sum(
            d["cycles_per_iteration"] >= c["cycles_per_iteration"] - 1e-9
            for d, c in zip(degraded, clean)
        )
        strictly = sum(
            d["cycles_per_iteration"] > c["cycles_per_iteration"] + 1e-6
            for d, c in zip(degraded, clean)
        )
        assert slower == len(entries)  # degradation only removes resources
        assert strictly >= len(entries) // 3  # and it bites on many blocks
