"""Table III regeneration benchmark: instruction microbenchmarks.

Reproduces the full 3-chip x 9-instruction matrix and checks every cell
against the paper's published throughput/latency values.
"""

import pytest

from repro.bench import table3
from repro.bench.microbench import run_microbenchmarks


@pytest.mark.parametrize("chip", ["gcs", "spr", "genoa"])
def test_table3_chip(benchmark, chip):
    results = benchmark.pedantic(
        run_microbenchmarks, args=(chip,), rounds=1, iterations=1
    )
    assert len(results) == 9
    for r in results:
        ref_tput, ref_lat = table3.PAPER_REFERENCE[chip][r.instruction]
        assert r.throughput_per_cycle == pytest.approx(ref_tput, rel=0.10), (
            f"{chip}/{r.instruction}: throughput {r.throughput_per_cycle} "
            f"vs paper {ref_tput}"
        )
        assert r.latency_cycles == pytest.approx(ref_lat, rel=0.10), (
            f"{chip}/{r.instruction}: latency {r.latency_cycles} "
            f"vs paper {ref_lat}"
        )


def test_table3_cross_chip_ordering():
    """Paper claims: GLC leads vector throughput; V2 leads latency."""
    results = {c: {r.instruction: r for r in run_microbenchmarks(c)}
               for c in ("gcs", "spr", "genoa")}
    # SPR's 512-bit pipes double everyone's vector ADD/MUL/FMA rate
    for instr in ("vec_add", "vec_mul", "vec_fma"):
        assert results["spr"][instr].throughput_per_cycle == pytest.approx(
            2 * results["gcs"][instr].throughput_per_cycle
        )
    # V2 has the lowest (or tied) latency for every instruction
    for instr in results["gcs"]:
        v2 = results["gcs"][instr].latency_cycles
        assert v2 <= results["spr"][instr].latency_cycles + 1e-9
        assert v2 <= results["genoa"][instr].latency_cycles + 1e-9
    # V2 doubles x86 scalar throughput
    assert results["gcs"]["scalar_add"].throughput_per_cycle == pytest.approx(
        2 * results["spr"]["scalar_add"].throughput_per_cycle
    )
