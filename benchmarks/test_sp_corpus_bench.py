"""Extension: the single-precision corpus variant.

The paper validates double-precision kernels only; SP variants double
the lanes per vector without changing the instruction count.  This
bench regenerates the SP corpus on one machine per ISA and checks that
(a) the lower-bound contract carries over and (b) streaming kernels
halve their per-element cost versus the DP corpus.
"""

import pytest

from repro.analysis import analyze_instructions
from repro.bench import fig3
from repro.isa import parse_kernel
from repro.kernels import generate_assembly
from repro.machine import get_machine_model
from repro.simulator.core import CoreSimulator

KERNELS_SP = ("striad", "add", "j2d5pt", "sum", "pi")


def test_sp_corpus_contract(benchmark):
    result = benchmark.pedantic(
        fig3.run,
        kwargs=dict(
            machines=("spr", "gcs"),
            kernels=KERNELS_SP,
            iterations=60,
            precision="sp",
        ),
        rounds=1,
        iterations=1,
    )
    s = result.summary("osaca")
    assert s["tests"] == 5 * 4 * 5  # kernels x opts x (3 + 2 personas)
    assert s["right_side_fraction"] >= 0.9
    assert s["off_by_2x"] == 0


def test_sp_doubles_elements_not_cycles():
    """Per-iteration cycles stay put; elements double → SP halves the
    per-element cost for vector streaming kernels."""
    model = get_machine_model("golden_cove")
    for kernel in ("striad", "add"):
        cy = {}
        for prec in ("dp", "sp"):
            asm = generate_assembly(kernel, "gcc", "O2", "golden_cove",
                                    precision=prec)
            instrs = parse_kernel(asm, "x86")
            cy[prec] = CoreSimulator(model).run(
                instrs, iterations=60, warmup=20
            ).cycles_per_iteration
        assert cy["sp"] == pytest.approx(cy["dp"], rel=0.05), kernel


def test_sp_scalar_unchanged():
    """Scalar SP and DP code have identical schedules on these models
    (no half-throughput scalar SP units)."""
    model = get_machine_model("zen4")
    dp = generate_assembly("gs2d5pt", "gcc", "O2", "zen4", precision="dp")
    sp = generate_assembly("gs2d5pt", "gcc", "O2", "zen4", precision="sp")
    a = analyze_instructions(parse_kernel(dp, "x86"), model).prediction
    b = analyze_instructions(parse_kernel(sp, "x86"), model).prediction
    assert a == b
