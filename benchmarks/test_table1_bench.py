"""Table I regeneration benchmark: node specs + measured BW and peak."""

import pytest

from repro.bench import table1


def test_table1(benchmark):
    rows = benchmark(table1.run)
    by = {r.chip: r for r in rows}

    # paper values (Table I)
    assert by["gcs"].bw_measured == pytest.approx(467, rel=0.05)
    assert by["spr"].bw_measured == pytest.approx(273, rel=0.05)
    assert by["genoa"].bw_measured == pytest.approx(360, rel=0.05)

    assert by["gcs"].achievable_peak_tflops == pytest.approx(3.82, rel=0.05)
    assert by["spr"].achievable_peak_tflops == pytest.approx(3.49, rel=0.1)
    assert by["genoa"].achievable_peak_tflops == pytest.approx(5.1, rel=0.1)

    # who-wins ordering: Genoa leads achievable peak, GCS leads
    # bandwidth efficiency
    assert by["genoa"].achievable_peak_tflops > by["gcs"].achievable_peak_tflops
    assert by["genoa"].achievable_peak_tflops > by["spr"].achievable_peak_tflops
    eff = {c: by[c].bw_measured / by[c].bw_theoretical for c in by}
    assert eff["spr"] > eff["gcs"] > eff["genoa"]  # 90% > 87% > 78%


def test_table1_render(benchmark):
    text = benchmark(table1.render)
    assert "Achiev. DP peak" in text
