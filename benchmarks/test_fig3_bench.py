"""Fig. 3 regeneration benchmark: RPE histograms over the corpus.

The full 416-test corpus runs once (pedantic, 1 round) and is checked
against the paper's headline statistics; a reduced corpus benchmarks
the per-test pipeline cost.
"""

import pytest

from repro.bench import fig3


def test_fig3_full_corpus(benchmark):
    result = benchmark.pedantic(fig3.run, rounds=1, iterations=1)
    osaca = result.summary("osaca")
    mca = result.summary("mca")

    assert osaca["tests"] == 416

    # Our model: overwhelmingly on the optimistic side (paper: 96%),
    # with no >2x blowups (paper: 1).
    assert osaca["right_side_fraction"] >= 0.90
    assert osaca["off_by_2x"] <= 2

    # The documented exceptions are present: Gauss-Seidel on the V2
    # (register renaming) and pi on Zen 4 (scalar divide throughput).
    left = result.left_side_tests("osaca")
    assert any("gcs/gs2d5pt" in t for t in left)
    assert any("genoa/pi" in t for t in left)

    # MCA baseline: majority of predictions slower than the measurement
    # (paper: 75%) with a fat >2x tail (paper: 14).
    assert mca["right_side_fraction"] <= 0.50
    assert mca["off_by_2x"] >= 5

    # Our model beats the baseline globally (paper: on V2 and GLC).
    assert osaca["global_rpe"] < mca["global_rpe"]
    per_osaca = result.per_arch_summary("osaca")
    per_mca = result.per_arch_summary("mca")
    assert per_osaca["neoverse_v2"]["global_rpe"] < per_mca["neoverse_v2"]["global_rpe"]
    assert per_osaca["golden_cove"]["global_rpe"] < per_mca["golden_cove"]["global_rpe"]


def test_fig3_single_machine_pipeline(benchmark):
    result = benchmark.pedantic(
        fig3.run,
        kwargs=dict(machines=("gcs",), kernels=("striad", "sum"), iterations=60),
        rounds=1,
        iterations=1,
    )
    assert result.summary("osaca")["tests"] == 16
    assert result.summary("osaca")["right_side_fraction"] >= 0.9
