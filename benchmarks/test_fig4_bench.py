"""Fig. 4 regeneration benchmark: write-allocate evasion curves."""

import pytest

from repro.bench import fig4


def test_fig4(benchmark):
    series = benchmark.pedantic(
        fig4.run, kwargs=dict(n_points=10, working_set_lines=4096),
        rounds=1, iterations=1,
    )
    by = {(s.chip, s.non_temporal): s for s in series}

    # full-socket endpoints against the paper
    for key, ref in fig4.PAPER_REFERENCE.items():
        assert by[key].full_socket_ratio == pytest.approx(ref, abs=0.05), key

    # shapes:
    gcs = [p.traffic_ratio for p in by[("gcs", False)].points]
    assert max(gcs) < 1.02  # automatic claim from core 1

    spr = [p.traffic_ratio for p in by[("spr", False)].points]
    assert spr[0] == pytest.approx(2.0, abs=0.02)  # no evasion at 1 core
    assert min(spr) >= 1.74  # <= 25% reduction
    # crossover: SpecI2M engages somewhere inside the sweep
    assert any(a > 1.9 and b < 1.8 for a, b in zip(spr, spr[1:]))

    genoa = [p.traffic_ratio for p in by[("genoa", False)].points]
    assert all(r == pytest.approx(2.0, abs=0.02) for r in genoa)

    genoa_nt = [p.traffic_ratio for p in by[("genoa", True)].points]
    assert all(r == pytest.approx(1.0, abs=0.01) for r in genoa_nt)

    spr_nt = [p.traffic_ratio for p in by[("spr", True)].points]
    assert spr_nt[0] == pytest.approx(1.0, abs=0.02)  # small core counts clean
    assert spr_nt[-1] == pytest.approx(1.10, abs=0.03)  # 10% residual
