"""Fig. 2 regeneration benchmark: frequency curves per ISA class."""

import pytest

from repro.bench import fig2


def test_fig2(benchmark):
    series = benchmark(fig2.run)
    by = {(s.chip, s.isa_class): s for s in series}

    # full-socket endpoints (paper's reported sustained frequencies)
    for key, ref in fig2.PAPER_REFERENCE.items():
        assert by[key].full_socket_ghz == pytest.approx(ref, abs=0.12), key

    # GCS flat; SPR AVX-512 53% of turbo; Genoa 84% of turbo
    gcs = by[("gcs", "sve")]
    assert all(f == pytest.approx(3.4) for _, f in gcs.points)
    assert by[("spr", "avx512")].full_socket_ghz / 3.8 == pytest.approx(0.53, abs=0.03)
    assert by[("genoa", "avx512")].full_socket_ghz / 3.7 == pytest.approx(0.84, abs=0.03)

    # the 1.7x sustained-frequency edge of GCS over SPR for AVX-512 code
    ratio = gcs.full_socket_ghz / by[("spr", "avx512")].full_socket_ghz
    assert ratio == pytest.approx(1.7, abs=0.1)
