"""Shared configuration for the benchmark harness.

Each ``test_*`` module regenerates one table/figure of the paper.
Heavyweight experiments (the 416-test Fig. 3 corpus) run once per
session via ``benchmark.pedantic(rounds=1)`` — the timing is reported,
and the *result shape* is asserted against the paper's reference.
"""

import pytest


def pytest_collection_modifyitems(items):
    # keep benchmark ordering deterministic: tables first, then figures
    items.sort(key=lambda item: item.nodeid)
