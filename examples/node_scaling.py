#!/usr/bin/env python3
"""Node-level scaling: which chip wins for which kernel?

The paper's introduction frames the three-way comparison: SPR's wide
vectors vs Genoa's core count vs Grace's sustained frequency and
bandwidth efficiency.  This example combines the in-core model, the
frequency governor, and the bandwidth saturation model to predict
kernel GFLOP/s across core counts — and shows the crossovers.

Run:  python examples/node_scaling.py
"""

from repro.analysis.scaling import predict_scaling
from repro.kernels import all_kernels

CASES = [
    ("striad", "O2", "memory-bound streaming"),
    ("j3d7pt", "O3", "stencil"),
    ("pi", "Ofast", "compute-bound, divides"),
    ("horner8", "O2", "compute-bound FMA chain"),
    ("dot", "Ofast", "reduction"),
]


def main() -> None:
    kernels = all_kernels()
    for name, opt, label in CASES:
        k = kernels[name]
        print(f"=== {name} ({label}) at -{opt} ===")
        winner_by_count: dict[int, str] = {}
        for chip in ("gcs", "spr", "genoa"):
            s = predict_scaling(k, chip, persona="gcc", opt=opt)
            pts = "  ".join(
                f"{p.cores}c:{p.performance_gflops:7.1f}" for p in s.points
            )
            bound = "BW" if s.points[-1].bandwidth_bound else "core"
            print(f"  {chip:6s} [{s.isa_class:7s}] {pts}   (socket: {bound}-bound)")
            for p in s.points:
                cur = winner_by_count.get(p.cores, (None, 0.0))
                if not isinstance(cur, tuple):
                    continue
                if p.performance_gflops > cur[1]:
                    winner_by_count[p.cores] = (chip, p.performance_gflops)
        full = {
            chip: predict_scaling(k, chip, persona="gcc", opt=opt).points[-1]
            for chip in ("gcs", "spr", "genoa")
        }
        best = max(full, key=lambda c: full[c].performance_gflops)
        print(f"  full-socket winner: {best.upper()} "
              f"({full[best].performance_gflops:.0f} GFlop/s)\n")

    print("Observations (paper Secs. I-II):")
    print(" * memory-bound kernels follow Table I's measured bandwidth:")
    print("   GCS > Genoa > SPR;")
    print(" * compute-bound vector kernels go to Genoa's 96 cores unless")
    print("   SPR's 512-bit pipes offset its AVX-512 down-clocking;")
    print(" * scalar/latency-bound kernels benefit from Grace's 4-wide")
    print("   scalar FP and flat 3.4 GHz.")


if __name__ == "__main__":
    main()
