#!/usr/bin/env python3
"""Discover a port model experimentally — the paper's methodology.

The paper (Sec. II): documentation "often is incomplete or insufficient
to build a useful performance model. Therefore, we write microbenchmarks
[...] for every interesting instruction to obtain its throughput,
latency, and port occupation. For the latter, it is often necessary to
interleave the instruction with known instructions to infer the
potential ports of execution."

This example runs that workflow against the simulated hardware:

1. measure throughput and latency of a set of instructions with
   generated microbenchmarks (ibench style);
2. infer their candidate ports — with per-port µop counters on the
   Intel core (they exist there), and with probe interleaving on the
   AMD core (they don't);
3. compare the inferred model with the shipped machine model.

Run:  python examples/port_model_discovery.py
"""

from repro.analysis.portfinder import find_probes, infer_ports
from repro.bench.ibench import UnbenchableEntry, measure_entry
from repro.machine import get_machine_model

TARGETS = {
    "spr": [
        ("vaddpd", "z,z,z"), ("vmulpd", "y,y,y"), ("vfmadd231pd", "z,z,z"),
        ("vdivsd", "x,x,x"), ("imul", "r,r"), ("vpermilpd", "z,z"),
        ("add", "r,r"),
    ],
    "zen4": [
        ("vaddpd", "y,y,y"), ("vmulpd", "y,y,y"), ("imul", "r,r"),
    ],
}


def entry_of(model, mnemonic, signature):
    for e in model.entries:
        if e.mnemonic == mnemonic and e.signature == signature:
            return e
    raise LookupError((mnemonic, signature))


def main() -> None:
    for arch, targets in TARGETS.items():
        model = get_machine_model(arch)
        method = "port counters" if model.name == "golden_cove" else "interleaving"
        probes = find_probes(model)
        print(f"=== {model.name} (inference via {method}) ===")
        if method == "interleaving":
            print(f"  single-port probe instructions found: "
                  + ", ".join(f"{p}:{e.mnemonic}" for p, e in sorted(probes.items())))
        print(f"{'instruction':26s} {'1/tput':>7} {'lat':>5}  "
              f"{'inferred ports':22s} {'model says':18s}")
        for mnemonic, sig in targets:
            entry = entry_of(model, mnemonic, sig)
            try:
                m = measure_entry(model, entry)
            except UnbenchableEntry as e:
                print(f"{mnemonic:26s} (unbenchable: {e})")
                continue
            inf = infer_ports(model, entry)
            lat = f"{m.latency:.0f}" if m.latency is not None else "-"
            flag = "" if inf.correct else "  (partial: no probes for some ports)"
            print(f"{mnemonic + ' ' + sig:26s} {m.reciprocal_throughput:7.2f} "
                  f"{lat:>5}  {','.join(inf.inferred_ports):22s} "
                  f"{','.join(inf.true_ports):18s}{flag}")
        print()


if __name__ == "__main__":
    main()
