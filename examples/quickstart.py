#!/usr/bin/env python3
"""Quickstart: analyze, measure, and cross-check one loop kernel.

Takes a STREAM-triad inner loop (AVX2, as Clang emits it), and runs the
three engines the paper compares:

1. the OSACA-style static model (lower-bound prediction),
2. the cycle-level core simulator (the "hardware measurement"),
3. the LLVM-MCA-style baseline.

Run:  python examples/quickstart.py [arch]
      arch in {spr, genoa}  (x86 assembly below; default: genoa)
"""

import sys

import repro

TRIAD = """
.L4:
    vmovupd (%rax,%rcx,8), %ymm0
    vfmadd231pd (%rbx,%rcx,8), %ymm1, %ymm0
    vmovupd %ymm0, (%rdx,%rcx,8)
    addq $4, %rcx
    cmpq %rsi, %rcx
    jb .L4
"""


def main() -> None:
    arch = sys.argv[1] if len(sys.argv) > 1 else "genoa"

    print(f"=== Static in-core analysis ({arch}) ===")
    analysis = repro.analyze(TRIAD, arch=arch)
    print(analysis.report())
    print()

    print("=== Simulated hardware measurement ===")
    measurement = repro.simulate(TRIAD, arch=arch)
    print(f"measured:    {measurement.cycles_per_iteration:6.2f} cy/iter "
          f"(IPC {measurement.ipc:.2f})")

    baseline = repro.mca_predict(TRIAD, arch=arch)
    print(f"llvm-mca:    {baseline.cycles_per_iteration:6.2f} cy/iter")
    print(f"our model:   {analysis.prediction:6.2f} cy/iter "
          f"(bottleneck: {analysis.bottleneck})")

    rpe = (
        measurement.cycles_per_iteration - analysis.prediction
    ) / measurement.cycles_per_iteration
    print(f"\nrelative prediction error: {rpe*100:+.1f} % "
          "(positive = optimistic lower bound, as intended)")


if __name__ == "__main__":
    main()
