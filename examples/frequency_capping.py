#!/usr/bin/env python3
"""Sustained frequency under vector-heavy load (the paper's Fig. 2).

Sweeps active cores per ISA extension class on each chip and derives
the "achievable DP peak" row of Table I from the sustained full-socket
frequency.

Run:  python examples/frequency_capping.py
"""

from repro import get_chip_spec
from repro.simulator.frequency import FrequencyGovernor


def main() -> None:
    for chip in ("gcs", "spr", "genoa"):
        spec = get_chip_spec(chip)
        gov = FrequencyGovernor.for_chip(spec)
        print(f"=== {spec.name} ({spec.cores} cores, TDP {spec.tdp:.0f} W) ===")
        marks = sorted({1, spec.cores // 4, spec.cores // 2, spec.cores})
        header = "cores:".rjust(10) + "".join(f"{n:>9}" for n in marks)
        print(header)
        for isa in spec.isa_classes:
            row = f"{isa:>9}:" + "".join(
                f"{gov.sustained(n, isa):>8.2f} " for n in marks
            )
            print(row)
        peak = gov.achievable_peak_tflops(spec)
        print(f"  theoretical peak: {spec.theoretical_peak_tflops:5.2f} TFlop/s | "
              f"achievable at sustained frequency: {peak:5.2f} TFlop/s")
        ratio = gov.sustained(spec.cores, gov._widest_isa()) / spec.freq_max
        print(f"  full-socket vector frequency = {ratio*100:.0f}% of turbo\n")

    print("Paper observations reproduced:")
    print(" * GCS holds 3.4 GHz regardless of ISA width or core count;")
    print(" * SPR drops to 2.0 GHz (53% of turbo) for AVX-512-heavy code,")
    print("   while SSE/AVX sustain 3.0 GHz (78% of turbo);")
    print(" * Genoa decays gently to 3.1 GHz (84% of turbo) for all widths;")
    print(" * hence GCS can out-run SPR on parallel vector code despite a")
    print("   much lower theoretical peak (1.7x sustained-frequency edge).")


if __name__ == "__main__":
    main()
