#!/usr/bin/env python3
"""Compose the in-core model into node-level models (ECM + Roofline).

The paper's conclusion points to the Execution-Cache-Memory model as
the next step: this example feeds the in-core analysis of the STREAM
triad and a Jacobi stencil into the ECM composition and a Roofline with
kernel-specific (model-derived) ceilings.

Run:  python examples/roofline_ecm.py
"""

from repro import analyze, generate_assembly, get_chip_spec, get_machine_model
from repro.analysis.ecm import ECMModel
from repro.analysis.roofline import RooflineModel
from repro.kernels import KERNELS

CASES = [
    # (kernel, persona, chip, uarch)
    ("striad", "gcc", "genoa", "zen4"),
    ("j2d5pt", "gcc", "genoa", "zen4"),
    ("striad", "gcc-arm", "gcs", "neoverse_v2"),
]


def main() -> None:
    for kernel, persona, chip, uarch in CASES:
        spec = get_chip_spec(chip)
        k = KERNELS[kernel]
        asm = generate_assembly(kernel, persona, "O2", uarch)
        ana = analyze(asm, uarch)

        elems_per_iter = 8 if uarch == "golden_cove" else (4 if uarch == "zen4" else 2)
        flops = k.flops_per_element * elems_per_iter
        bytes_mem = k.bytes_per_element * elems_per_iter

        print(f"=== {kernel} / {persona} on {spec.name} ===")
        print(f"  in-core prediction: {ana.prediction:.2f} cy/iter "
              f"({elems_per_iter} elements/iter, bottleneck: {ana.bottleneck})")

        ecm = ECMModel(model=get_machine_model(uarch), chip=chip)
        pred = ecm.predict(
            ana,
            bytes_l1l2=bytes_mem,
            bytes_l2l3=bytes_mem,
            bytes_l3mem=bytes_mem,
        )
        print(f"  ECM decomposition:  {pred.as_string()}")
        for level in ("L1", "L2", "L3", "MEM"):
            cy = pred.cycles(level)
            gf = flops / cy * spec.freq_base if cy else float("inf")
            print(f"    data in {level:<4}: {cy:6.2f} cy/iter  "
                  f"({gf:6.2f} GFlop/s per core)")

        rl = RooflineModel(chip=chip)
        pt = rl.place(ana, flops_per_iteration=flops, bytes_per_iteration=bytes_mem)
        print(f"  Roofline: intensity {pt.arithmetic_intensity:.3f} F/B, "
              f"in-core ceiling {pt.ceiling_gflops:,.0f} GFlop/s, "
              f"attainable {pt.performance_gflops:,.0f} GFlop/s "
              f"({pt.limiting_factor})\n")


if __name__ == "__main__":
    main()
