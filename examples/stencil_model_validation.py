#!/usr/bin/env python3
"""Validate the in-core models on stencil kernels across compilers.

A miniature of the paper's Fig. 3 methodology: generate the Jacobi and
Gauss-Seidel kernels the way each compiler persona would at each
optimization level, "measure" them on the simulated core, and compare
both predictors.

Run:  python examples/stencil_model_validation.py
"""

from repro import analyze, generate_assembly, get_machine_model, mca_predict, simulate
from repro.kernels import OPT_LEVELS, personas_for_isa
from repro.kernels.corpus import MACHINES

KERNELS = ("j2d5pt", "j3d7pt", "j3d27pt", "gs2d5pt")


def main() -> None:
    print(f"{'test':42s} {'measured':>9} {'model':>8} {'RPE':>7} "
          f"{'mca':>8} {'mcaRPE':>7}")
    print("-" * 88)
    for machine, (uarch, isa) in MACHINES.items():
        for persona in personas_for_isa(isa):
            for kernel in KERNELS:
                for opt in OPT_LEVELS:
                    asm = generate_assembly(kernel, persona, opt, uarch)
                    meas = simulate(asm, uarch).cycles_per_iteration
                    pred = analyze(asm, uarch).prediction
                    mca = mca_predict(asm, uarch).cycles_per_iteration
                    rpe = (meas - pred) / meas
                    mca_rpe = (meas - mca) / meas
                    tag = f"{machine}/{kernel}/{persona.name}/{opt}"
                    marker = "  <-- over-predicted" if rpe < -1e-9 else ""
                    print(f"{tag:42s} {meas:9.2f} {pred:8.2f} {rpe*100:+6.1f}% "
                          f"{mca:8.2f} {mca_rpe*100:+6.1f}%{marker}")
        print()

    print("Notes:")
    print(" * 'model' is the OSACA-style lower bound: RPE should be >= 0.")
    print(" * Gauss-Seidel on GCS/armclang lands on the negative side —")
    print("   the paper's register-renaming case, reproduced by design.")


if __name__ == "__main__":
    main()
