# Schönauer triad (a[i] = b[i] + s * c[i]), AVX2, as gcc -O2 lays it
# out — the demo kernel for `make trace-demo` and docs/observability.md.
.L4:
    vmovupd (%rax,%rcx,8), %ymm0
    vfmadd231pd (%rbx,%rcx,8), %ymm1, %ymm0
    vmovupd %ymm0, (%rdx,%rcx,8)
    addq $4, %rcx
    cmpq %rsi, %rcx
    jb .L4
