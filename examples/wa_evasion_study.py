#!/usr/bin/env python3
"""Write-allocate evasion case study (the paper's Section III).

Streams a store-only (array initialization) benchmark through the cache
hierarchy of each chip and reads the memory-controller traffic through
the LIKWID-like counter facade, exactly as the paper measures it.
A traffic-to-stored-data ratio of 1.0 means perfect WA evasion; 2.0
means every store paid a read-for-ownership.

Run:  python examples/wa_evasion_study.py
"""

from repro import get_chip_spec, run_store_benchmark
from repro.simulator.counters import PerfCounters
from repro.simulator.memory import hierarchy_for_chip


def counter_demo(chip: str) -> None:
    """Show the raw counter path for a single-core run."""
    spec = get_chip_spec(chip)
    counters = PerfCounters(spec)
    hierarchy = hierarchy_for_chip(spec, scale=1e-4)
    counters.attach_hierarchy(hierarchy)

    n_lines, line = 4096, spec.memory.line_bytes
    for i in range(n_lines):
        hierarchy.store(i * line, line)
    hierarchy.drain()

    mem = counters.read("MEM")
    stored = n_lines * line
    print(f"  single core, {stored/1e6:.1f} MB stored: "
          f"read {mem['read_bytes']/1e6:6.1f} MB, "
          f"write {mem['write_bytes']/1e6:6.1f} MB  "
          f"-> ratio {(mem['total_bytes'])/stored:.2f}")


def scaling_study(chip: str, non_temporal: bool) -> None:
    spec = get_chip_spec(chip)
    label = f"{chip.upper()}{' + NT stores' if non_temporal else ''}"
    cores = sorted({1, 2, 4, 8, spec.cores // 4, spec.cores // 2, spec.cores})
    points = []
    for n in cores:
        r = run_store_benchmark(chip, n, non_temporal=non_temporal,
                                working_set_lines=4096)
        points.append(f"{n}c:{r.traffic_ratio:.2f}")
    print(f"  {label:22s} " + "  ".join(points))


def main() -> None:
    print("Counter path (LIKWID-style MEM group):")
    for chip in ("gcs", "spr", "genoa"):
        counter_demo(chip)

    print("\nTraffic ratio vs. active cores (Fig. 4):")
    scaling_study("gcs", False)
    scaling_study("spr", False)
    scaling_study("spr", True)
    scaling_study("genoa", False)
    scaling_study("genoa", True)

    print("""
Reading the results:
 * GCS claims cache lines automatically -> ~1.0 everywhere.
 * SPR's SpecI2M engages only once a ccNUMA domain's memory interface
   saturates, and removes at most ~25% of the write-allocates (2.0 ->
   1.75); its NT stores keep a ~10% residual read stream.
 * Genoa never evades automatically (2.0 flat); NT stores are the only
   -- but fully effective -- way out (1.0).""")


if __name__ == "__main__":
    main()
