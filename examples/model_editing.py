#!/usr/bin/env python3
"""Edit, verify, and explore machine models.

Three workflows on top of the model layer:

1. dump a shipped model to an editable JSON machine file, change a
   latency, and see the analysis react;
2. run the ibench-style self-check on the edited model;
3. the vector-length what-if: Grace with 256-bit SVE.

Run:  python examples/model_editing.py
"""

import json
import tempfile
from pathlib import Path

import repro
from repro.bench.ibench import measure_entry
from repro.machine import get_machine_model, load_model, model_to_dict
from repro.machine.whatif import elements_per_vector, widen_neoverse_v2

CHAIN = "vfmadd231pd %ymm1, %ymm2, %ymm8\nsubq $1, %rax\njnz .L\n"


def main() -> None:
    # -- 1. dump / edit / reload -------------------------------------------
    data = model_to_dict(get_machine_model("zen4"))
    print(f"zen4 machine file: {len(data['entries'])} entries")
    for e in data["entries"]:
        if e["mnemonic"] == "vfmadd231pd" and e["signature"] == "y,y,y":
            print(f"  editing vfmadd231pd y,y,y latency {e['latency']} -> 6.0")
            e["latency"] = 6.0
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "zen4_edited.json"
        path.write_text(json.dumps(data))
        edited = load_model(path)

    stock = repro.analyze(CHAIN, arch="zen4")
    custom = repro.analyze(CHAIN, arch=edited)
    print(f"  FMA-chain prediction: stock {stock.prediction:.0f} cy/iter, "
          f"edited {custom.prediction:.0f} cy/iter\n")

    # -- 2. self-check an entry against the simulator ------------------------
    model = get_machine_model("zen4")
    entry = next(
        e for e in model.entries
        if (e.mnemonic, e.signature) == ("vfmadd231pd", "y,y,y")
    )
    r = measure_entry(model, entry)
    print(f"ibench vfmadd231pd y,y,y on zen4: 1/throughput "
          f"{r.reciprocal_throughput:.2f} cy (resource bound "
          f"{r.model_bound:.2f}), latency {r.latency:.0f} cy\n")

    # -- 3. what-if: Grace with VL=256 ---------------------------------------
    base = get_machine_model("grace")
    wide = widen_neoverse_v2(2)
    sve_triad = """
    ld1d z0.d, p0/z, [x1, x13, lsl #3]
    ld1d z1.d, p0/z, [x2, x13, lsl #3]
    fmla z0.d, p0/m, z1.d, z15.d
    st1d z0.d, p0, [x0, x13, lsl #3]
    incd x13
    whilelo p0.d, x13, x14
    b.any .L
    """
    for m in (base, wide):
        meas = repro.simulate(sve_triad, arch=m)
        per_elem = meas.cycles_per_iteration / elements_per_vector(m)
        print(f"SVE triad on {m.name:22s}: "
              f"{meas.cycles_per_iteration:.2f} cy/iter = "
              f"{per_elem:.2f} cy/element")
    print("\nSame SVE binary, half the per-element cost — the VLA payoff "
          "the paper's Sec. II weighs against Golden Cove's 512-bit ISA.")


if __name__ == "__main__":
    main()
